//! The static lock-order verifier: the compile-time complement of the
//! runtime rank checker in `prophet_mc::sync`.
//!
//! The runtime checker (`OrderedMutex`/`OrderedRwLock` under
//! `--features check`) only proves the rank discipline over paths a test
//! actually executes; an inversion on an unexercised path ships
//! silently. This pass proves the discipline over *all* source paths in
//! the scoped crates, with three layers:
//!
//! 1. **Lock map** — every `OrderedMutex::new(rank, …)` /
//!    `OrderedRwLock::new(rank, …)` definition site is parsed and its
//!    rank expression resolved against the extracted
//!    [rank table](crate::ranktable). The binding name (struct field or
//!    `let`) plus the field's declared inner type tie acquisition sites
//!    (`self.meta.lock()`, `shards[i].read()`…) back to ranks.
//! 2. **Guard model** — each function body is walked linearly with a
//!    scope stack: `let`-bound guards hold their rank until `drop(g)` or
//!    scope end; expression temporaries hold to the end of their
//!    statement. Acquiring a rank ≤ any held rank is a finding.
//! 3. **May-hold fixpoint** — a per-function call graph (plain calls,
//!    `self.`/`Self::` calls, and distinctively-named method calls) is
//!    closed transitively into `may_acquire(f)`: every rank `f` or its
//!    callees can take. A call made while holding rank R is a finding if
//!    the callee may acquire any rank ≤ R, reported with the full call
//!    path down to the acquiring function.
//!
//! # Soundness policy
//!
//! The pass is deliberately *lightweight* — token-level, no type
//! inference — so it trades a documented sliver of coverage for running
//! on every push in milliseconds:
//!
//! * method calls whose names collide with std collection/iterator
//!   vocabulary (`insert`, `get`, `clear`, …, the `AMBIENT` list) are
//!   not resolved into the call graph: resolving `map.insert(…)` to
//!   `SharedBasisStore::insert` would drown the report in false paths.
//!   Such calls remain covered by the runtime checker and by this pass's
//!   *intra*-function walk of the callee itself;
//! * an acquisition whose receiver cannot be tied to a known lock is its
//!   own finding (`unresolved`), so the lock map must stay complete —
//!   unknown locks fail the gate instead of silently escaping;
//! * per-site escapes are explicit: `// analysis:allow(lock-order):
//!   reason` — used where ascending order is proven by construction in a
//!   way the token model cannot see (the store's ascending shard-index
//!   walks), and audited like any other allow.
//!
//! `docs/ANALYSIS.md` carries the full architecture discussion.

use std::collections::{HashMap, HashSet};

use crate::findings::Finding;
use crate::lex::{ident_at, lex, punct_at, skip_group, strip_test_regions, Lexed, Tok, TokKind};
use crate::ranktable::RankTable;

/// A contiguous rank span. Scalars are `lo == hi`; a lock *array* (the
/// store's shards) is its whole span, acquired ascending by index — a
/// discipline the runtime checker proves and this pass treats as one
/// opaque range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankRange {
    pub lo: u16,
    pub hi: u16,
    pub name: String,
}

impl RankRange {
    fn describe(&self) -> String {
        if self.lo == self.hi {
            format!("`{}` (rank {})", self.name, self.lo)
        } else {
            format!("`{}` (ranks {}–{})", self.name, self.lo, self.hi)
        }
    }
}

/// Method names never resolved into the call graph: std
/// collection/iterator/option vocabulary that would otherwise alias
/// workspace functions of the same name (`insert`, `clear`, …) into
/// every call site. See the module docs' soundness policy.
const AMBIENT: &[&str] = &[
    "new",
    "default",
    "clone",
    "insert",
    "get",
    "get_mut",
    "remove",
    "take",
    "replace",
    "push",
    "pop",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "drain",
    "entry",
    "extend",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "map",
    "filter",
    "fold",
    "collect",
    "join",
    "next",
    "min",
    "max",
    "sum",
    "count",
    "get_or_insert_with",
    "unwrap_or_else",
    "unwrap_or",
    "to_vec",
    "to_string",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "send",
    "recv",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "abs",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "finish",
    "field",
    "wait",
    "notify_all",
    "notify_one",
    "lock",
    "read",
    "write",
    "flush",
    "rank",
    "name",
    "is_some",
    "is_none",
    "ok",
    "err",
    "expect",
    "unwrap",
    "and_then",
    "or_else",
    "position",
    "find",
    "any",
    "all",
    "rev",
    "zip",
    "enumerate",
    "chain",
    "split_off",
    "retain",
    "resize",
    "reserve",
    "with_capacity",
    "capacity",
    "first",
    "last",
    "swap",
    "entries",
    "observe",
];

/// Rust keywords that look like call heads (`if (…)`, `while (…)`,
/// `match (…)`, `return (…)`, …) and must not resolve as functions.
const KEYWORDS: &[&str] = &[
    "if",
    "else",
    "while",
    "for",
    "match",
    "return",
    "loop",
    "fn",
    "let",
    "impl",
    "struct",
    "enum",
    "trait",
    "mod",
    "use",
    "pub",
    "const",
    "static",
    "move",
    "mut",
    "ref",
    "in",
    "as",
    "where",
    "dyn",
    "box",
    "unsafe",
    "async",
    "await",
    "break",
    "continue",
    "crate",
    "self",
    "Self",
    "super",
    "type",
    "assert",
    "debug_assert",
];

// --------------------------------------------------------- per-file maps

/// A file's lock-name map plus its lexed, test-stripped tokens.
struct FileInfo {
    path: String,
    toks: Vec<Tok>,
    allowed: Lexed,
    /// ident → rank range, from definition sites and typed field decls.
    locks: HashMap<String, RankRange>,
}

/// One function item.
struct FnInfo {
    file: usize,
    name: String,
    /// Token range of the body, *inside* the braces.
    body: (usize, usize),
}

/// The assembled model: files, functions, and the per-function facts the
/// checker and fixpoint run on.
pub struct LockModel {
    files: Vec<FileInfo>,
    fns: Vec<FnInfo>,
    /// fn name → indices into `fns` (collisions possible; resolution
    /// rules decide which apply per call site).
    by_name: HashMap<String, Vec<usize>>,
    /// Cross-file fallback: binding names whose definition sites all
    /// agree on one range (a struct may be *declared* with its
    /// `OrderedMutex` field in one file and *constructed* in another).
    /// Ambiguous names — `state` is rank 10 in the scheduler and 40 in
    /// the store — are deliberately absent.
    global_locks: HashMap<String, RankRange>,
    /// Findings raised while building the model (unresolved rank
    /// expressions and the like).
    pub build_findings: Vec<Finding>,
}

/// One step of a function body walk.
enum Event {
    Acquire {
        range: RankRange,
        line: usize,
        /// `None`: expression temporary (released at statement end);
        /// `Some(idents)`: a `let`-bound guard (released at `drop` of any
        /// of the idents or at scope end of the binding's depth).
        binding: Option<(Vec<String>, usize)>,
    },
    Drop {
        ident: String,
    },
    /// Scope close back *to* `depth`: release bindings deeper than it.
    CloseScope {
        depth: usize,
    },
    /// Statement boundary: release temporaries.
    EndStmt,
    Call {
        name: String,
        line: usize,
        /// `self.x()` / `Self::x()`: resolve within the defining file only.
        same_file: bool,
        /// Method/path call (ambient filter applies) vs plain call.
        method: bool,
    },
}

/// Build the model over `files` (path, source). Files named `sync.rs`
/// are excluded wholesale: they implement the primitives this pass
/// reasons about, and their internal raw-lock plumbing is the runtime
/// checker's own responsibility.
pub fn build(files: &[(String, String)], table: &RankTable) -> LockModel {
    let mut model = LockModel {
        files: Vec::new(),
        fns: Vec::new(),
        by_name: HashMap::new(),
        global_locks: HashMap::new(),
        build_findings: Vec::new(),
    };
    for (path, src) in files {
        if path.rsplit('/').next() == Some("sync.rs") {
            continue;
        }
        let lexed = lex(src);
        let toks = strip_test_regions(lexed.toks.clone());
        let mut info = FileInfo {
            path: path.clone(),
            toks,
            allowed: Lexed {
                toks: Vec::new(),
                allowed: lexed.allowed,
            },
            locks: HashMap::new(),
        };
        collect_locks(&mut info, table, &mut model.build_findings);
        let file_idx = model.files.len();
        collect_fns(&info, file_idx, &mut model.fns, &mut model.by_name);
        model.files.push(info);
    }
    // Cross-file fallback map: keep only names every defining file agrees
    // on.
    let mut agree: HashMap<String, Option<RankRange>> = HashMap::new();
    for f in &model.files {
        for (name, range) in &f.locks {
            match agree.get(name) {
                None => {
                    agree.insert(name.clone(), Some(range.clone()));
                }
                Some(Some(r)) if r == range => {}
                _ => {
                    agree.insert(name.clone(), None);
                }
            }
        }
    }
    model.global_locks = agree
        .into_iter()
        .filter_map(|(k, v)| v.map(|r| (k, r)))
        .collect();
    model
}

/// Definition-site + typed-field collection for one file.
fn collect_locks(info: &mut FileInfo, table: &RankTable, findings: &mut Vec<Finding>) {
    let toks = &info.toks;
    // (field name, inner type ident) from typed field declarations, to be
    // joined against definition sites' value types.
    let mut typed_fields: Vec<(String, String)> = Vec::new();
    // (rank range, value type ident) per definition site.
    let mut def_values: Vec<(RankRange, Option<String>)> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let Some(name) = ident_at(toks, i) else {
            i += 1;
            continue;
        };
        if name != "OrderedMutex" && name != "OrderedRwLock" {
            i += 1;
            continue;
        }
        // Type position: `OrderedMutex<Inner>` → record (field, Inner).
        if punct_at(toks, i + 1, '<') {
            if let Some(inner) = ident_at(toks, i + 2) {
                if let Some(field) = binding_before(toks, i) {
                    typed_fields.push((field, inner.to_string()));
                }
            }
            i += 1;
            continue;
        }
        // Definition site: `OrderedMutex::new(<rank expr>, <value>)`.
        if !(punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
            && ident_at(toks, i + 3) == Some("new")
            && punct_at(toks, i + 4, '('))
        {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let (range, after_rank) = match parse_rank_expr(toks, i + 5, table) {
            Some(parsed) => parsed,
            None => {
                findings.push(Finding::new(
                    "lock-order",
                    &info.path,
                    line,
                    "cannot resolve this lock's rank expression against the rank table — \
                     use a named `LockRank` const"
                        .into(),
                ));
                i += 5;
                continue;
            }
        };
        // First ident of the value argument: the inner type hint.
        let value_ty = ident_at(toks, after_rank + 1).map(str::to_string);
        def_values.push((range.clone(), value_ty));
        if let Some(binding) = binding_before(toks, i) {
            info.locks.insert(binding, range);
        }
        i = after_rank + 1;
    }

    // Join typed fields to definition sites by inner type: this is what
    // ties `shards: Arc<[OrderedRwLock<Shard>]>` to the
    // `OrderedRwLock::new(rank::STORE_SHARDS[i], Shard::default())`
    // construction bound to a differently-named local.
    for (field, inner) in typed_fields {
        if info.locks.contains_key(&field) {
            continue;
        }
        let matches: Vec<&RankRange> = def_values
            .iter()
            .filter(|(_, ty)| ty.as_deref() == Some(inner.as_str()))
            .map(|(r, _)| r)
            .collect();
        if let Some(first) = matches.first() {
            if matches.iter().all(|r| *r == *first) {
                info.locks.insert(field, (*first).clone());
            }
        }
    }
}

/// Resolve the rank expression starting at `i` (just past the opening
/// paren): either an inline `LockRank::new(N, "name")` or a path ending
/// in a rank const (`rank::STORE_META`, `ENGINE_METRICS`,
/// `rank::STORE_SHARDS[i]`). Returns the range and the index of the `,`
/// ending the expression.
fn parse_rank_expr(toks: &[Tok], i: usize, table: &RankTable) -> Option<(RankRange, usize)> {
    // Inline literal (tests, fixtures).
    if ident_at(toks, i) == Some("LockRank")
        && punct_at(toks, i + 1, ':')
        && punct_at(toks, i + 2, ':')
        && ident_at(toks, i + 3) == Some("new")
        && punct_at(toks, i + 4, '(')
    {
        if let (Some(TokKind::Num(n)), Some(TokKind::Str(s))) = (
            toks.get(i + 5).map(|t| &t.kind),
            toks.get(i + 7).map(|t| &t.kind),
        ) {
            let n = n.parse::<u16>().ok()?;
            let close = skip_group(toks, i + 4); // past the inner `)`
            if punct_at(toks, close, ',') {
                return Some((
                    RankRange {
                        lo: n,
                        hi: n,
                        name: s.clone(),
                    },
                    close,
                ));
            }
        }
        return None;
    }
    // Path form: collect idents to the `,` (depth 0), noting indexing.
    let mut j = i;
    let mut last_ident: Option<String> = None;
    let mut indexed = false;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct(',') => break,
            TokKind::Punct('(') | TokKind::Punct('[') => {
                if punct_at(toks, j, '[') {
                    indexed = true;
                }
                j = skip_group(toks, j);
                continue;
            }
            TokKind::Punct(')') => return None,
            TokKind::Ident(s) => last_ident = Some(s.clone()),
            _ => {}
        }
        j += 1;
    }
    let const_name = last_ident?;
    let _ = indexed; // which slot of an array is index-dependent: model the whole span
    let entry = table.by_const(&const_name)?;
    let range = RankRange {
        lo: entry.lo,
        hi: entry.hi,
        name: entry.lock_name.clone(),
    };
    Some((range, j))
}

/// The binding a definition at `i` initializes: scan backwards (bounded,
/// stopping at statement boundaries) for the nearest `ident :` struct
/// field / `let ident` pattern.
fn binding_before(toks: &[Tok], i: usize) -> Option<String> {
    let lo = i.saturating_sub(48);
    let mut j = i;
    while j > lo {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct(';') | TokKind::Punct('}') => return None,
            // Single colon (not `::`) preceded by an ident: field or
            // `let name: Type`.
            TokKind::Punct(':')
                if !punct_at(toks, j + 1, ':') && !punct_at(toks, j.wrapping_sub(1), ':') =>
            {
                if let Some(name) = ident_at(toks, j - 1) {
                    if !KEYWORDS.contains(&name) {
                        return Some(name.to_string());
                    }
                }
            }
            TokKind::Ident(s) if s == "let" => {
                let k = if ident_at(toks, j + 1) == Some("mut") {
                    j + 2
                } else {
                    j + 1
                };
                return ident_at(toks, k).map(str::to_string);
            }
            _ => {}
        }
    }
    None
}

/// Function-item extraction for one file.
fn collect_fns(
    info: &FileInfo,
    file_idx: usize,
    fns: &mut Vec<FnInfo>,
    by_name: &mut HashMap<String, Vec<usize>>,
) {
    let toks = &info.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            i += 1;
            continue;
        };
        let name = name.to_string();
        let mut j = i + 2;
        // Generics: `<…>` with `->` arrows inside `Fn() -> T` bounds.
        if punct_at(toks, j, '<') {
            let mut depth = 0isize;
            while j < toks.len() {
                if punct_at(toks, j, '<') {
                    depth += 1;
                } else if punct_at(toks, j, '>') && !punct_at(toks, j.wrapping_sub(1), '-') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !punct_at(toks, j, '(') {
            i += 1;
            continue;
        }
        let params_end = skip_group(toks, j);
        // Forward to the body `{` or a `;` (trait method without body).
        let mut k = params_end;
        let mut body = None;
        while k < toks.len() {
            match &toks[k].kind {
                TokKind::Punct(';') => break,
                TokKind::Punct('{') => {
                    body = Some((k + 1, skip_group(toks, k).saturating_sub(1)));
                    break;
                }
                _ => k += 1,
            }
        }
        if let Some(body) = body {
            let idx = fns.len();
            fns.push(FnInfo {
                file: file_idx,
                name: name.clone(),
                body,
            });
            by_name.entry(name).or_default().push(idx);
        }
        // Continue from past the params so nested fns are found too; the
        // event walk skips nested `fn` items to avoid double attribution.
        i = params_end;
    }
}

// ------------------------------------------------------------ event walk

/// One open `let` binding during a body walk.
struct LetCtx {
    idents: Vec<String>,
    depth: usize,
    /// Still scanning the pattern/type, i.e. the `=` has not passed yet.
    before_eq: bool,
    /// An `if let` / `while let`: the binding lives in the *body* scope,
    /// not the enclosing one.
    cond: bool,
}

/// Walk one function body into events. `locks` is the file's lock map.
fn walk_body(
    info: &FileInfo,
    global: &HashMap<String, RankRange>,
    body: (usize, usize),
    events: &mut Vec<Event>,
) {
    let toks = &info.toks;
    let (start, end) = body;
    let mut depth = 0usize;
    let mut let_stack: Vec<LetCtx> = Vec::new();
    // Locals that *refer* to a lock without acquiring it
    // (`let shard = &self.shards[i];`, `for s in self.shards.iter()`):
    // resolved like the lock itself at their acquisition sites.
    let mut aliases: HashMap<String, RankRange> = HashMap::new();
    let mut i = start;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                // An `if let`/`while let` binding scope starts at its body.
                if let_stack
                    .last()
                    .is_some_and(|l| l.cond && l.depth == depth && !l.before_eq)
                {
                    let_stack.pop();
                }
                depth += 1;
                events.push(Event::EndStmt);
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                events.push(Event::EndStmt);
                events.push(Event::CloseScope { depth });
                // A `let … = match { … }` arm close does not end the let.
                i += 1;
            }
            TokKind::Punct(';') => {
                events.push(Event::EndStmt);
                if let_stack.last().is_some_and(|l| l.depth == depth) {
                    let_stack.pop();
                }
                i += 1;
            }
            TokKind::Punct('=') => {
                // `=` (not `==`, `=>`, `<=`…): the active let's pattern is
                // complete.
                if !punct_at(toks, i + 1, '=')
                    && !punct_at(toks, i + 1, '>')
                    && !punct_at(toks, i.wrapping_sub(1), '=')
                    && !punct_at(toks, i.wrapping_sub(1), '<')
                    && !punct_at(toks, i.wrapping_sub(1), '>')
                    && !punct_at(toks, i.wrapping_sub(1), '!')
                    && !punct_at(toks, i.wrapping_sub(1), '+')
                    && !punct_at(toks, i.wrapping_sub(1), '-')
                    && !punct_at(toks, i.wrapping_sub(1), '*')
                    && !punct_at(toks, i.wrapping_sub(1), '/')
                {
                    if let Some(last) = let_stack.last_mut() {
                        last.before_eq = false;
                    }
                }
                i += 1;
            }
            TokKind::Ident(s) if s == "let" => {
                let cond = matches!(ident_at(toks, i.wrapping_sub(1)), Some("if" | "while"));
                // Collect pattern idents up to `=` (or `;` for `let x;`).
                let mut idents = Vec::new();
                let mut j = i + 1;
                while j < end {
                    match &toks[j].kind {
                        TokKind::Punct('=') | TokKind::Punct(';') => break,
                        TokKind::Punct(':') if !punct_at(toks, j + 1, ':') => {
                            // Type ascription: skip to `=`/`;` at depth 0.
                            let mut angle = 0isize;
                            while j < end {
                                match &toks[j].kind {
                                    TokKind::Punct('<') => angle += 1,
                                    TokKind::Punct('>') => angle -= 1,
                                    TokKind::Punct('=') | TokKind::Punct(';') if angle <= 0 => {
                                        break
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                            break;
                        }
                        TokKind::Ident(id) if id != "mut" && id != "ref" => {
                            idents.push(id.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                // Alias detection: if the initializer mentions a known
                // lock but never acquires one, the bound name is a
                // reference to the lock itself.
                if punct_at(toks, j, '=') {
                    if let Some(range) =
                        initializer_lock_ref(info, global, &aliases, toks, j + 1, end, cond)
                    {
                        for id in &idents {
                            aliases.insert(id.clone(), range.clone());
                        }
                    }
                }
                let_stack.push(LetCtx {
                    idents,
                    depth,
                    before_eq: true,
                    cond,
                });
                i = j;
            }
            TokKind::Ident(s) if s == "for" => {
                // `for pat in <expr> {`: alias the loop variable when the
                // expression refers to a known lock without acquiring it.
                let mut idents = Vec::new();
                let mut j = i + 1;
                while j < end && ident_at(toks, j) != Some("in") {
                    if let TokKind::Ident(id) = &toks[j].kind {
                        if id != "mut" && id != "ref" {
                            idents.push(id.clone());
                        }
                    }
                    j += 1;
                }
                if ident_at(toks, j) == Some("in") {
                    if let Some(range) =
                        initializer_lock_ref(info, global, &aliases, toks, j + 1, end, true)
                    {
                        for id in &idents {
                            aliases.insert(id.clone(), range.clone());
                        }
                    }
                }
                // A guard acquired in the loop header
                // (`for x in m.lock().drain(..)`) lives for the whole
                // loop: bind it to the body scope like an `if let`.
                let_stack.push(LetCtx {
                    idents,
                    depth,
                    before_eq: false,
                    cond: true,
                });
                i = j + 1;
            }
            TokKind::Ident(s) if s == "fn" => {
                // Nested fn item: skip — it is extracted as its own
                // function and must not pollute this walk.
                let mut j = i + 1;
                while j < end && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
                    j += 1;
                }
                i = if punct_at(toks, j, '{') {
                    skip_group(toks, j)
                } else {
                    j + 1
                };
            }
            TokKind::Ident(s) if s == "drop" && punct_at(toks, i + 1, '(') => {
                if let Some(id) = ident_at(toks, i + 2) {
                    if punct_at(toks, i + 3, ')') {
                        events.push(Event::Drop {
                            ident: id.to_string(),
                        });
                    }
                }
                i += 1;
            }
            TokKind::Punct('.')
                if matches!(ident_at(toks, i + 1), Some("lock" | "read" | "write"))
                    && punct_at(toks, i + 2, '(')
                    && punct_at(toks, i + 3, ')') =>
            {
                let line = toks[i + 1].line;
                let recv = receiver_before(toks, i, start);
                match recv.as_deref() {
                    Some("self") => {
                        // `self.read()`: a method call on the type, not a
                        // lock acquisition — emitted as a same-file call.
                        events.push(Event::Call {
                            name: ident_at(toks, i + 1).unwrap().to_string(),
                            line,
                            same_file: true,
                            method: false,
                        });
                    }
                    _ => {
                        let range = recv
                            .as_deref()
                            .and_then(|r| info.locks.get(r))
                            .cloned()
                            .or_else(|| recv.as_deref().and_then(|r| aliases.get(r)).cloned())
                            .or_else(|| recv.as_deref().and_then(|r| global.get(r)).cloned())
                            .or_else(|| {
                                statement_lock_hint(info, global, &aliases, toks, i, start)
                            });
                        let binding = let_stack.last().filter(|l| !l.before_eq).map(|l| {
                            (l.idents.clone(), if l.cond { l.depth + 1 } else { l.depth })
                        });
                        match range {
                            Some(range) => events.push(Event::Acquire {
                                range,
                                line,
                                binding,
                            }),
                            None => events.push(Event::Acquire {
                                range: RankRange {
                                    lo: 0,
                                    hi: u16::MAX,
                                    name: format!(
                                        "<unresolved `{}.{}()`>",
                                        recv.as_deref().unwrap_or("?"),
                                        ident_at(toks, i + 1).unwrap()
                                    ),
                                },
                                line,
                                binding,
                            }),
                        }
                    }
                }
                i += 4;
            }
            TokKind::Ident(name)
                if punct_at(toks, i + 1, '(')
                    && !KEYWORDS.contains(&name.as_str())
                    && !punct_at(toks, i.wrapping_sub(1), '!') =>
            {
                let is_method = punct_at(toks, i.wrapping_sub(1), '.');
                let is_path = punct_at(toks, i.wrapping_sub(1), ':')
                    && punct_at(toks, i.wrapping_sub(2), ':');
                let same_file = (is_method && ident_at(toks, i.wrapping_sub(2)) == Some("self"))
                    || (is_path && ident_at(toks, i.wrapping_sub(3)) == Some("Self"));
                // Macros (`foo!(…)`) were excluded by the `!` check above.
                events.push(Event::Call {
                    name: name.clone(),
                    line: toks[i].line,
                    same_file,
                    method: (is_method || is_path) && !same_file,
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
    events.push(Event::EndStmt);
    events.push(Event::CloseScope { depth: 0 });
}

/// The receiver ident of the `.lock()`-style call whose dot sits at `dot`.
fn receiver_before(toks: &[Tok], dot: usize, lo: usize) -> Option<String> {
    if dot == 0 || dot <= lo {
        return None;
    }
    let mut j = dot - 1;
    // `foo[idx].lock()` / `foo().lock()`: hop over the trailing group.
    while j > lo && (punct_at(toks, j, ']') || punct_at(toks, j, ')')) {
        let close = match toks[j].kind {
            TokKind::Punct(']') => '[',
            _ => '(',
        };
        let mut depth = 0usize;
        loop {
            match &toks[j].kind {
                TokKind::Punct(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Punct(c) if *c == (if close == '[' { ']' } else { ')' }) => {
                    depth += 1;
                }
                _ => {}
            }
            if j == lo {
                return None;
            }
            j -= 1;
        }
        if j == lo {
            return None;
        }
        j -= 1; // token before the opening bracket
    }
    ident_at(toks, j).map(str::to_string)
}

/// Fallback receiver resolution: when a closure parameter or chained
/// expression hides the lock (`self.shards.iter().map(|s| s.read())`),
/// look backwards through the enclosing statement for any known lock
/// name.
fn statement_lock_hint(
    info: &FileInfo,
    global: &HashMap<String, RankRange>,
    aliases: &HashMap<String, RankRange>,
    toks: &[Tok],
    at: usize,
    lo: usize,
) -> Option<RankRange> {
    let mut j = at;
    while j > lo {
        j -= 1;
        match &toks[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            TokKind::Ident(s) => {
                if let Some(range) = info
                    .locks
                    .get(s)
                    .or_else(|| aliases.get(s))
                    .or_else(|| global.get(s))
                {
                    return Some(range.clone());
                }
            }
            _ => {}
        }
    }
    None
}

/// Does the expression starting at `from` *refer* to a known lock
/// without acquiring it? Scans to the statement's end — `;` at relative
/// depth 0, or the body `{` when `stops_at_brace` (if/while-let and for
/// headers). Returns the referenced lock's range for aliasing, or `None`
/// if nothing is referenced or an acquisition happens (the guard path
/// handles those).
fn initializer_lock_ref(
    info: &FileInfo,
    global: &HashMap<String, RankRange>,
    aliases: &HashMap<String, RankRange>,
    toks: &[Tok],
    from: usize,
    end: usize,
    stops_at_brace: bool,
) -> Option<RankRange> {
    let mut depth = 0isize;
    let mut referenced: Option<RankRange> = None;
    let mut j = from;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct(';') if depth == 0 => break,
            TokKind::Punct('{') if depth == 0 && stops_at_brace => break,
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            TokKind::Punct('.')
                if matches!(ident_at(toks, j + 1), Some("lock" | "read" | "write"))
                    && punct_at(toks, j + 2, '(')
                    && punct_at(toks, j + 3, ')') =>
            {
                return None; // acquires: not a bare reference
            }
            TokKind::Ident(s) if referenced.is_none() => {
                referenced = info
                    .locks
                    .get(s)
                    .or_else(|| aliases.get(s))
                    .or_else(|| global.get(s))
                    .cloned();
            }
            _ => {}
        }
        j += 1;
    }
    referenced
}

// --------------------------------------------------------------- checker

/// Run the inter-procedural check over the model, returning findings.
pub fn check(model: &LockModel) -> Vec<Finding> {
    // Per-function events.
    let mut events: Vec<Vec<Event>> = Vec::with_capacity(model.fns.len());
    for f in &model.fns {
        let mut ev = Vec::new();
        walk_body(&model.files[f.file], &model.global_locks, f.body, &mut ev);
        events.push(ev);
    }

    // Call adjacency + direct acquisitions.
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); model.fns.len()];
    let mut direct: Vec<Vec<RankRange>> = vec![Vec::new(); model.fns.len()];
    for (fi, ev) in events.iter().enumerate() {
        for e in ev {
            match e {
                Event::Acquire { range, .. } if range.name.starts_with('<') => {} // unresolved
                Event::Acquire { range, .. } if !direct[fi].contains(range) => {
                    direct[fi].push(range.clone());
                }
                Event::Call {
                    name,
                    same_file,
                    method,
                    ..
                } => {
                    for c in resolve_call(model, model.fns[fi].file, name, *same_file, *method) {
                        if !callees[fi].contains(&c) {
                            callees[fi].push(c);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // may_acquire fixpoint.
    let mut may: Vec<Vec<RankRange>> = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fi in 0..model.fns.len() {
            for ci in callees[fi].clone() {
                let add: Vec<RankRange> = may[ci]
                    .iter()
                    .filter(|r| !may[fi].contains(r))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    may[fi].extend(add);
                    changed = true;
                }
            }
        }
    }

    // Per-function linear check.
    let mut findings = Vec::new();
    for (fi, ev) in events.iter().enumerate() {
        check_fn(model, fi, ev, &callees, &direct, &may, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

fn resolve_call(
    model: &LockModel,
    file: usize,
    name: &str,
    same_file: bool,
    method: bool,
) -> Vec<usize> {
    let Some(all) = model.by_name.get(name) else {
        return Vec::new();
    };
    if same_file {
        return all
            .iter()
            .copied()
            .filter(|&i| model.fns[i].file == file)
            .collect();
    }
    if method && AMBIENT.contains(&name) {
        return Vec::new();
    }
    all.clone()
}

#[allow(clippy::too_many_arguments)]
fn check_fn(
    model: &LockModel,
    fi: usize,
    events: &[Event],
    callees: &[Vec<usize>],
    direct: &[Vec<RankRange>],
    may: &[Vec<RankRange>],
    findings: &mut Vec<Finding>,
) {
    let f = &model.fns[fi];
    let info = &model.files[f.file];
    struct Guard {
        idents: Vec<String>,
        range: RankRange,
        depth: usize,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut temps: Vec<RankRange> = Vec::new();

    let held_max = |guards: &[Guard], temps: &[RankRange]| -> Option<RankRange> {
        guards
            .iter()
            .map(|g| &g.range)
            .chain(temps.iter())
            .filter(|r| r.hi != u16::MAX) // unresolved ranges don't cascade
            .max_by_key(|r| r.hi)
            .cloned()
    };

    for e in events {
        match e {
            Event::Acquire {
                range,
                line,
                binding,
            } => {
                let allowed = info.allowed.allows("lock-order", *line);
                if range.hi == u16::MAX {
                    // Unresolved receiver: its own finding, never held.
                    findings.push(Finding {
                        allowed,
                        ..Finding::new(
                            "lock-order",
                            &info.path,
                            *line,
                            format!(
                                "in `{}`: {} — receiver not in the lock map; name the lock \
                                 or annotate the site",
                                f.name, range.name
                            ),
                        )
                    });
                    continue;
                }
                if let Some(top) = held_max(&guards, &temps) {
                    if range.lo <= top.hi {
                        findings.push(Finding {
                            allowed,
                            ..Finding::new(
                                "lock-order",
                                &info.path,
                                *line,
                                format!(
                                    "in `{}`: acquiring {} while holding {} — ranks must \
                                     strictly ascend (docs/CONCURRENCY.md)",
                                    f.name,
                                    range.describe(),
                                    top.describe()
                                ),
                            )
                        });
                    }
                }
                match binding {
                    Some((idents, depth)) => guards.push(Guard {
                        idents: idents.clone(),
                        range: range.clone(),
                        depth: *depth,
                    }),
                    None => temps.push(range.clone()),
                }
            }
            Event::Drop { ident } => {
                guards.retain(|g| !g.idents.iter().any(|i| i == ident));
            }
            Event::CloseScope { depth } => {
                guards.retain(|g| g.depth <= *depth);
            }
            Event::EndStmt => temps.clear(),
            Event::Call {
                name,
                line,
                same_file,
                method,
            } => {
                let Some(top) = held_max(&guards, &temps) else {
                    continue;
                };
                let allowed = info.allowed.allows("lock-order", *line);
                for ci in resolve_call(model, f.file, name, *same_file, *method) {
                    let viol = may[ci].iter().find(|r| r.lo <= top.hi);
                    if let Some(viol) = viol {
                        let path = call_path(model, ci, viol, callees, direct);
                        findings.push(Finding {
                            allowed,
                            ..Finding::new(
                                "lock-order",
                                &info.path,
                                *line,
                                format!(
                                    "in `{}`: calling `{}` while holding {} — the callee may \
                                     acquire {}{}",
                                    f.name,
                                    name,
                                    top.describe(),
                                    viol.describe(),
                                    path
                                ),
                            )
                        });
                        break; // one finding per call site
                    }
                }
            }
        }
    }
}

/// Shortest call path from `from` to a function directly acquiring
/// `target`, rendered as ` via a → b → c`.
fn call_path(
    model: &LockModel,
    from: usize,
    target: &RankRange,
    callees: &[Vec<usize>],
    direct: &[Vec<RankRange>],
) -> String {
    if direct[from].contains(target) {
        return String::new();
    }
    let mut prev: HashMap<usize, usize> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen: HashSet<usize> = HashSet::from([from]);
    while let Some(cur) = queue.pop_front() {
        for &next in &callees[cur] {
            if !seen.insert(next) {
                continue;
            }
            prev.insert(next, cur);
            if direct[next].contains(target) {
                let mut chain = vec![next];
                let mut at = next;
                while let Some(&p) = prev.get(&at) {
                    chain.push(p);
                    at = p;
                }
                chain.reverse();
                let names: Vec<&str> = chain.iter().map(|&i| model.fns[i].name.as_str()).collect();
                return format!(" via `{}`", names.join(" → "));
            }
            queue.push_back(next);
        }
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranktable;

    const RANKS: &str = r#"
        pub const LOW: LockRank = LockRank::new(10, "low lock");
        pub const MID: LockRank = LockRank::new(40, "mid lock");
        pub const HIGH: LockRank = LockRank::new(90, "high lock");
        pub const ARR: [LockRank; 2] = [
            LockRank::new(50, "arr 0"),
            LockRank::new(51, "arr 1"),
        ];
    "#;

    fn run(src: &str) -> Vec<Finding> {
        let files = vec![
            ("crates/x/src/sync_ranks.rs".to_string(), RANKS.to_string()),
            ("crates/x/src/code.rs".to_string(), src.to_string()),
        ];
        let table = ranktable::extract(&files);
        let model = build(&files, &table);
        let mut f = model.build_findings.clone();
        f.extend(check(&model));
        f
    }

    fn active(src: &str) -> Vec<Finding> {
        run(src).into_iter().filter(|f| !f.allowed).collect()
    }

    const STRUCT: &str = r#"
        struct S {
            low: OrderedMutex<u32>,
            mid: OrderedMutex<u32>,
            high: OrderedMutex<u32>,
        }
        impl S {
            fn new() -> S {
                S {
                    low: OrderedMutex::new(LOW, 0),
                    mid: OrderedMutex::new(MID, 0),
                    high: OrderedMutex::new(HIGH, 0),
                }
            }
        }
    "#;

    #[test]
    fn ascending_acquisition_is_clean() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn ok(&self) {{
                    let a = self.low.lock();
                    let b = self.mid.lock();
                    *self.high.lock() += *a + *b;
                }}
            }}"
        );
        assert_eq!(active(&src), Vec::new());
    }

    #[test]
    fn direct_inversion_is_a_finding_with_both_names() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn bad(&self) {{
                    let h = self.high.lock();
                    let l = self.low.lock();
                }}
            }}"
        );
        let f = active(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("low lock") && f[0].message.contains("high lock"));
        assert_eq!(f[0].pass, "lock-order");
    }

    #[test]
    fn guard_drop_releases_the_rank() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn ok(&self) {{
                    let h = self.high.lock();
                    drop(h);
                    let l = self.low.lock();
                }}
            }}"
        );
        assert_eq!(active(&src), Vec::new());
    }

    #[test]
    fn scope_end_releases_the_rank() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn ok(&self) {{
                    {{
                        let h = self.high.lock();
                    }}
                    let l = self.low.lock();
                }}
            }}"
        );
        assert_eq!(active(&src), Vec::new());
    }

    #[test]
    fn temporary_releases_at_statement_end() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn ok(&self) {{
                    *self.high.lock() += 1;
                    let l = self.low.lock();
                }}
            }}"
        );
        assert_eq!(active(&src), Vec::new());
    }

    #[test]
    fn equal_rank_reacquisition_is_a_finding() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn bad(&self) {{
                    let a = self.mid.lock();
                    let b = self.mid.lock();
                }}
            }}"
        );
        let f = active(&src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn call_path_inversion_is_reported_with_the_path() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn leaf(&self) {{
                    let l = self.low.lock();
                }}
                fn middle(&self) {{
                    self.leaf();
                }}
                fn bad(&self) {{
                    let h = self.high.lock();
                    self.middle();
                }}
            }}"
        );
        let f = active(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("leaf") && f[0].message.contains("middle"),
            "path missing: {}",
            f[0].message
        );
    }

    #[test]
    fn ascending_call_is_clean() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn leaf(&self) {{
                    let h = self.high.lock();
                }}
                fn ok(&self) {{
                    let l = self.low.lock();
                    self.leaf();
                }}
            }}"
        );
        assert_eq!(active(&src), Vec::new());
    }

    #[test]
    fn allow_marker_suppresses_but_still_reports() {
        let src = format!(
            "{STRUCT}
            impl S {{
                fn excused(&self) {{
                    let h = self.high.lock();
                    // analysis:allow(lock-order): test fixture
                    let l = self.low.lock();
                }}
            }}"
        );
        let all = run(&src);
        assert!(active(&src).is_empty());
        assert_eq!(all.iter().filter(|f| f.allowed).count(), 1);
    }

    #[test]
    fn array_lock_conflicts_with_itself() {
        let src = r#"
            struct S { arr: [OrderedRwLock<u32>; 2] }
            impl S {
                fn new() -> S {
                    S { arr: std::array::from_fn(|_| OrderedRwLock::new(ARR[0], 0)) }
                }
                fn bad(&self) {
                    let a = self.arr[0].write();
                    let b = self.arr[1].write();
                }
            }
        "#;
        let f = active(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("arr 0…1"), "{}", f[0].message);
    }

    #[test]
    fn closure_receiver_resolves_through_the_statement() {
        let src = r#"
            struct S { arr: [OrderedRwLock<u32>; 2], high: OrderedMutex<u32> }
            impl S {
                fn new() -> S {
                    S {
                        arr: std::array::from_fn(|_| OrderedRwLock::new(ARR[0], 0)),
                        high: OrderedMutex::new(HIGH, 0),
                    }
                }
                fn ok(&self) {
                    let guards: Vec<_> = self.arr.iter().map(|s| s.read()).collect();
                    *self.high.lock() += 1;
                }
                fn bad(&self) {
                    let h = self.high.lock();
                    let guards: Vec<_> = self.arr.iter().map(|s| s.read()).collect();
                }
            }
        "#;
        let f = active(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("high lock"), "{}", f[0].message);
    }

    #[test]
    fn unresolved_receiver_is_its_own_finding() {
        let src = r#"
            struct S;
            impl S {
                fn mystery(&self, thing: &Foo) {
                    let g = thing.mystery_lock.lock();
                }
            }
        "#;
        let f = active(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("not in the lock map"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn test_regions_are_invisible() {
        let src = format!(
            "{STRUCT}
            #[cfg(test)]
            mod tests {{
                fn bad(s: &super::S) {{
                    let h = s.high.lock();
                    let l = s.low.lock();
                }}
            }}"
        );
        assert_eq!(active(&src), Vec::new());
    }
}
