//! The analyzer driver:
//! `cargo run -p analysis -- [--root DIR] [--allowlist FILE] [--json PATH] [--write-docs]`.
//!
//! Walks `crates/*/src/**/*.rs` and `src/**/*.rs` under the root and runs
//! the four passes (see the library docs and `docs/ANALYSIS.md`):
//!
//! 1. the conformance **lint** over every file, with the checked-in
//!    allowlist;
//! 2. the **rank-table** extractor — duplicate-rank detection plus a
//!    drift check against `docs/CONCURRENCY.md` (`--write-docs`
//!    regenerates the block in place instead of reporting drift);
//! 3. the **lock-order** verifier over `crates/{mc,core,fingerprint}`;
//! 4. the **map-iter** determinism audit over the result-affecting
//!    crates (`mc`, `core`, `fingerprint`, `sql`, `vg`).
//!
//! Output is one line per finding in `file:line: [pass] message` form —
//! the shape `.github/problem-matchers/analysis.json` matches — plus a
//! summary. `--json PATH` additionally writes the machine-readable
//! findings document the CI gate asserts on. Exit status: 0 clean, 1 on
//! any active (non-allowed) finding or stale allowlist entry, 2 on
//! usage/IO errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analysis::findings::{render_json, Finding};
use analysis::{determinism, lint_source, lockgraph, ranktable, Allowlist};

/// Crates whose lock acquisitions the lock-order pass proves.
const LOCK_SCOPE: &[&str] = &[
    "crates/mc/src/",
    "crates/core/src/",
    "crates/fingerprint/src/",
];

/// Crates whose outputs must not depend on hash-iteration order.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/mc/src/",
    "crates/core/src/",
    "crates/fingerprint/src/",
    "crates/sql/src/",
    "crates/vg/src/",
];

const DOCS_PATH: &str = "docs/CONCURRENCY.md";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut write_docs = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--allowlist" => match args.next() {
                Some(file) => allowlist_path = Some(PathBuf::from(file)),
                None => return usage("--allowlist requires a file"),
            },
            "--json" => match args.next() {
                Some(file) => json_path = Some(PathBuf::from(file)),
                None => return usage("--json requires a file"),
            },
            "--write-docs" => write_docs = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let mut allowlist = match load_allowlist(&allowlist_path) {
        Ok(list) => list,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    let mut paths = Vec::new();
    collect_sources(&root, &mut paths);
    paths.sort();
    if paths.is_empty() {
        eprintln!(
            "error: no source files under {} — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    // Read everything up front: the rank-table and lock passes are
    // whole-program.
    let mut files: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = rel_path(&root, path);
        match std::fs::read_to_string(path) {
            Ok(src) => files.push((rel, src)),
            Err(err) => {
                eprintln!("error: reading {rel}: {err}");
                return ExitCode::from(2);
            }
        }
    }

    let mut findings: Vec<Finding> = Vec::new();

    // ---- pass 1: conformance lint
    for (rel, src) in &files {
        for v in lint_source(rel, src) {
            let allowed = allowlist.allows(rel, &v);
            findings.push(Finding {
                allowed,
                ..Finding::new(v.rule.name(), rel, v.line, v.message.clone())
            });
        }
    }

    // ---- pass 2: rank table (duplicates + docs drift / regeneration)
    let table = ranktable::extract(&files);
    findings.extend(ranktable::duplicate_findings(&table));
    let docs_file = root.join(DOCS_PATH);
    match std::fs::read_to_string(&docs_file) {
        Ok(docs) => {
            if write_docs {
                match ranktable::rewrite_docs(&docs, &table) {
                    Some(rewritten) => {
                        if rewritten != docs {
                            if let Err(err) = std::fs::write(&docs_file, &rewritten) {
                                eprintln!("error: writing {DOCS_PATH}: {err}");
                                return ExitCode::from(2);
                            }
                            println!("{DOCS_PATH}: rank table regenerated");
                        }
                    }
                    None => {
                        findings.extend(ranktable::drift_finding(DOCS_PATH, &docs, &table));
                    }
                }
            } else {
                findings.extend(ranktable::drift_finding(DOCS_PATH, &docs, &table));
            }
        }
        Err(err) => {
            // The docs are part of the contract; a missing file is drift.
            findings.push(Finding::new(
                "rank-table",
                DOCS_PATH,
                1,
                format!("cannot read the concurrency docs: {err}"),
            ));
        }
    }

    // ---- pass 3: static lock order
    let lock_files: Vec<(String, String)> = files
        .iter()
        .filter(|(rel, _)| LOCK_SCOPE.iter().any(|p| rel.starts_with(p)))
        .cloned()
        .collect();
    let model = lockgraph::build(&lock_files, &table);
    findings.extend(model.build_findings.iter().cloned());
    findings.extend(lockgraph::check(&model));

    // ---- pass 4: determinism audit
    for (rel, src) in &files {
        if DETERMINISM_SCOPE.iter().any(|p| rel.starts_with(p)) {
            determinism::audit(rel, src, &mut findings);
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    for f in &findings {
        println!("{f}");
    }

    let stale = allowlist.stale();
    for entry in &stale {
        println!(
            "{}:{}: stale allowlist entry `{} {}` — it suppresses nothing; remove it",
            allowlist_path.display(),
            entry.line,
            entry.rule.name(),
            entry.path,
        );
    }

    if let Some(json_path) = &json_path {
        let doc = render_json(&findings, files.len());
        if let Err(err) = std::fs::write(json_path, doc) {
            eprintln!("error: writing {}: {err}", json_path.display());
            return ExitCode::from(2);
        }
    }

    let active = findings.iter().filter(|f| !f.allowed).count();
    let allowed = findings.len() - active;
    if active > 0 || !stale.is_empty() {
        println!(
            "analysis: {active} active finding(s), {allowed} allowed, {} stale allowlist \
             entr(ies) across {} files",
            stale.len(),
            files.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "analysis clean: {} files, {} rank(s) in the table, {allowed} allowed finding(s), \
             {} allowlist grant(s) in use",
            files.len(),
            table.entries.len(),
            allowlist.entries.len()
        );
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "error: {msg}\nusage: analysis [--root DIR] [--allowlist FILE] [--json PATH] [--write-docs]"
    );
    ExitCode::from(2)
}

fn load_allowlist(path: &Path) -> Result<Allowlist, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Allowlist::parse(&text),
        // A missing allowlist is an empty one.
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(err) => Err(format!("reading {}: {err}", path.display())),
    }
}

/// `.rs` files under `<root>/src` and `<root>/crates/*/src`, recursively.
fn collect_sources(root: &Path, out: &mut Vec<PathBuf>) {
    collect_rs(&root.join("src"), out);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            collect_rs(&entry.path().join("src"), out);
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
