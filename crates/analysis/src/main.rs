//! The lint driver: `cargo run -p analysis -- [--root DIR] [--allowlist FILE]`.
//!
//! Walks `crates/*/src/**/*.rs` and `src/**/*.rs` under the root, lints
//! each file ([`analysis::lint_source`]), applies the checked-in
//! allowlist, and exits nonzero on any violation *or* any stale
//! allowlist entry. See the library docs for the rules.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analysis::{lint_source, Allowlist};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--allowlist" => match args.next() {
                Some(file) => allowlist_path = Some(PathBuf::from(file)),
                None => return usage("--allowlist requires a file"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let mut allowlist = match load_allowlist(&allowlist_path) {
        Ok(list) => list,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    collect_sources(&root, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!(
            "error: no source files under {} — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    let mut violations = 0usize;
    for file in &files {
        let rel = rel_path(&root, file);
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(err) => {
                eprintln!("error: reading {rel}: {err}");
                return ExitCode::from(2);
            }
        };
        for v in lint_source(&rel, &src) {
            if allowlist.allows(&rel, &v) {
                continue;
            }
            println!("{rel}:{}: {v}", v.line);
            violations += 1;
        }
    }

    let stale = allowlist.stale();
    for entry in &stale {
        println!(
            "{}:{}: stale allowlist entry `{} {}` — it suppresses nothing; remove it",
            allowlist_path.display(),
            entry.line,
            entry.rule.name(),
            entry.path,
        );
    }

    if violations > 0 || !stale.is_empty() {
        println!(
            "lint: {violations} violation(s), {} stale allowlist entr(ies) across {} files",
            stale.len(),
            files.len()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "lint clean: {} files, {} allowlist grant(s) in use",
            files.len(),
            allowlist.entries.len()
        );
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\nusage: analysis [--root DIR] [--allowlist FILE]");
    ExitCode::from(2)
}

fn load_allowlist(path: &Path) -> Result<Allowlist, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Allowlist::parse(&text),
        // A missing allowlist is an empty one.
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(err) => Err(format!("reading {}: {err}", path.display())),
    }
}

/// `.rs` files under `<root>/src` and `<root>/crates/*/src`, recursively.
fn collect_sources(root: &Path, out: &mut Vec<PathBuf>) {
    collect_rs(&root.join("src"), out);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            collect_rs(&entry.path().join("src"), out);
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
