//! The shared token layer: every pass in this crate — the conformance
//! lint, the lock-graph verifier, the determinism audit, the rank-table
//! extractor — sees source through this lexer, so strings, comments,
//! char literals, lifetimes, and `#[cfg(test)]` regions are invisible to
//! all of them by construction.
//!
//! The lexer also collects *allow markers*. Two spellings share one
//! grammar:
//!
//! * `// lint:allow(rule): reason` — the token-level lint's hatch;
//! * `// analysis:allow(pass): reason` — the analyzer passes' hatch
//!   (`lock-order`, `map-iter`, …).
//!
//! A marker covers its own line and the next line that carries code, so
//! it can close a multi-line explanatory comment. Rule names are not
//! validated here — each pass filters [`Lexed::allowed`] by the names it
//! owns, and the driver reports marker names nothing claimed.

use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    Ident(String),
    /// A string literal's raw contents (escapes unprocessed).
    Str(String),
    Punct(char),
    /// Numeric literal text (needed by the rank extractor).
    Num(String),
    /// Char literals, lifetimes: present so adjacency checks see real
    /// neighbours, otherwise inert.
    Other,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: usize,
}

/// Lexer output: the token stream plus, per allow-name, the set of lines
/// a marker covers.
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allowed: HashMap<String, HashSet<usize>>,
}

impl Lexed {
    /// Whether `name` is allowed at `line`.
    pub fn allows(&self, name: &str, line: usize) -> bool {
        self.allowed.get(name).is_some_and(|l| l.contains(&line))
    }
}

pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut toks = Vec::new();
    let mut allowed: HashMap<String, HashSet<usize>> = HashMap::new();
    // Allows whose "next code line" hasn't been seen yet.
    let mut pending: Vec<String> = Vec::new();

    macro_rules! bump {
        () => {{
            if bytes[pos] == b'\n' {
                line += 1;
            }
            pos += 1;
        }};
    }

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' | b' ' | b'\t' | b'\r' => bump!(),
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                let start = pos;
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
                let comment = &src[start..pos];
                for prefix in ["lint:allow(", "analysis:allow("] {
                    if let Some(idx) = comment.find(prefix) {
                        let rest = &comment[idx + prefix.len()..];
                        if let Some(end) = rest.find(')') {
                            let name = rest[..end].trim().to_string();
                            allowed.entry(name.clone()).or_default().insert(line);
                            pending.push(name);
                        }
                    }
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                bump!();
                bump!();
                while pos < bytes.len() && depth > 0 {
                    if bytes[pos] == b'/' && bytes.get(pos + 1) == Some(&b'*') {
                        depth += 1;
                        bump!();
                    } else if bytes[pos] == b'*' && bytes.get(pos + 1) == Some(&b'/') {
                        depth -= 1;
                        bump!();
                    }
                    bump!();
                }
            }
            b'"' => {
                let s = lex_cooked_string(bytes, &mut pos, &mut line);
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Str(s), line);
            }
            b'r' | b'b' if raw_string_hashes(bytes, pos).is_some() => {
                let (prefix, hashes) = raw_string_hashes(bytes, pos).unwrap();
                pos += prefix; // consume r / br / rb prefix and the hashes
                let s = lex_raw_string(bytes, &mut pos, &mut line, hashes);
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Str(s), line);
            }
            b'b' if bytes.get(pos + 1) == Some(&b'"') => {
                pos += 1;
                let s = lex_cooked_string(bytes, &mut pos, &mut line);
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Str(s), line);
            }
            b'\'' => {
                lex_quote(bytes, &mut pos, &mut line);
                push_tok(&mut toks, &mut pending, &mut allowed, TokKind::Other, line);
            }
            b'0'..=b'9' => {
                let start = pos;
                pos += 1;
                while pos < bytes.len() {
                    let c = bytes[pos];
                    let numeric = c.is_ascii_alphanumeric()
                        || c == b'_'
                        || (c == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit));
                    if !numeric {
                        break;
                    }
                    pos += 1;
                }
                push_tok(
                    &mut toks,
                    &mut pending,
                    &mut allowed,
                    TokKind::Num(src[start..pos].to_string()),
                    line,
                );
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let ident = src[start..pos].to_string();
                push_tok(
                    &mut toks,
                    &mut pending,
                    &mut allowed,
                    TokKind::Ident(ident),
                    line,
                );
            }
            c => {
                bump!();
                if c.is_ascii() {
                    push_tok(
                        &mut toks,
                        &mut pending,
                        &mut allowed,
                        TokKind::Punct(c as char),
                        line,
                    );
                } else {
                    // Non-ASCII outside strings/comments: skip the byte.
                }
            }
        }
    }
    Lexed { toks, allowed }
}

/// Emit a token, attaching any pending inline allows to its line.
fn push_tok(
    toks: &mut Vec<Tok>,
    pending: &mut Vec<String>,
    allowed: &mut HashMap<String, HashSet<usize>>,
    kind: TokKind,
    line: usize,
) {
    for name in pending.drain(..) {
        allowed.entry(name).or_default().insert(line);
    }
    toks.push(Tok { kind, line });
}

/// At `pos` on `"`: consume the literal, returning its raw contents.
fn lex_cooked_string(bytes: &[u8], pos: &mut usize, line: &mut usize) -> String {
    let start = *pos + 1;
    *pos += 1;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'\\' => *pos += 2,
            b'"' => break,
            b'\n' => {
                *line += 1;
                *pos += 1;
            }
            _ => *pos += 1,
        }
    }
    let end = (*pos).min(bytes.len());
    if *pos < bytes.len() {
        *pos += 1; // closing quote
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

/// If `pos` starts a raw-string prefix (`r"`, `r#"`, `br"`, `br#"`…),
/// return `(prefix_len_through_opening_quote, hash_count)`.
fn raw_string_hashes(bytes: &[u8], pos: usize) -> Option<(usize, usize)> {
    let mut i = pos;
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        Some((i + 1 - pos, hashes))
    } else {
        None
    }
}

/// `pos` just past the opening quote: consume to `"` + `hashes` hashes.
fn lex_raw_string(bytes: &[u8], pos: &mut usize, line: &mut usize, hashes: usize) -> String {
    let start = *pos;
    while *pos < bytes.len() {
        if bytes[*pos] == b'\n' {
            *line += 1;
        }
        if bytes[*pos] == b'"' {
            let tail = &bytes[*pos + 1..];
            if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                let content = String::from_utf8_lossy(&bytes[start..*pos]).into_owned();
                *pos += 1 + hashes;
                return content;
            }
        }
        *pos += 1;
    }
    String::from_utf8_lossy(&bytes[start..]).into_owned()
}

/// At `'`: char literal or lifetime — consume either.
fn lex_quote(bytes: &[u8], pos: &mut usize, line: &mut usize) {
    let next = bytes.get(*pos + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: scan to the closing quote.
            *pos += 2;
            while *pos < bytes.len() && bytes[*pos] != b'\'' {
                if bytes[*pos] == b'\\' {
                    *pos += 1;
                }
                *pos += 1;
            }
            *pos += 1;
        }
        Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
            if bytes.get(*pos + 2) == Some(&b'\'') {
                *pos += 3; // 'x'
            } else {
                // Lifetime: consume the ident, no closing quote.
                *pos += 2;
                while *pos < bytes.len()
                    && (bytes[*pos].is_ascii_alphanumeric() || bytes[*pos] == b'_')
                {
                    *pos += 1;
                }
            }
        }
        _ => {
            // `'('`-style literal (possibly multibyte): bounded scan.
            let limit = (*pos + 8).min(bytes.len());
            *pos += 1;
            while *pos < limit && bytes[*pos] != b'\'' {
                if bytes[*pos] == b'\n' {
                    *line += 1;
                }
                *pos += 1;
            }
            *pos += 1;
        }
    }
}

// ------------------------------------------------- test-region stripping

/// Drop tokens inside `#[cfg(test)]` / `#[test]` items (and everything,
/// if the file opens with `#![cfg(test)]`).
pub fn strip_test_regions(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct('#') {
            if let Some((idents, inner, j)) = parse_attr(&toks, i) {
                let testish = idents.first().map(String::as_str) == Some("test")
                    || (idents.first().map(String::as_str) == Some("cfg")
                        && idents.iter().any(|s| s == "test"));
                if testish && inner {
                    return out; // `#![cfg(test)]`: the whole file is test code
                }
                if testish {
                    i = skip_item(&toks, j);
                    continue;
                }
                out.extend_from_slice(&toks[i..j]);
                i = j;
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Parse an attribute at `i` (`#` or `#!` then `[...]`), returning its
/// identifiers, whether it was an inner attribute, and the index past it.
fn parse_attr(toks: &[Tok], i: usize) -> Option<(Vec<String>, bool, usize)> {
    let mut j = i + 1;
    let inner = toks.get(j).map(|t| &t.kind) == Some(&TokKind::Punct('!'));
    if inner {
        j += 1;
    }
    if toks.get(j).map(|t| &t.kind) != Some(&TokKind::Punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut idents = Vec::new();
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((idents, inner, j + 1));
                }
            }
            TokKind::Ident(name) => idents.push(name.clone()),
            _ => {}
        }
        j += 1;
    }
    None
}

/// From `i` (just past a test-ish attribute), consume any further
/// attributes and then one item: through its matching `{…}` or to `;`.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('#') => {
                if let Some((_, _, j)) = parse_attr(toks, i) {
                    i = j;
                } else {
                    i += 1;
                }
            }
            TokKind::Punct('{') => {
                let mut depth = 0usize;
                while i < toks.len() {
                    match &toks[i].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            TokKind::Punct(';') => return i + 1,
            _ => i += 1,
        }
    }
    i
}

// --------------------------------------------------------- token helpers

pub fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub fn punct_at(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).map(|t| &t.kind) == Some(&TokKind::Punct(c))
}

/// `toks[i]` follows a `::` path segment whose head is `head`.
pub fn pathed_from(toks: &[Tok], i: usize, head: &str) -> bool {
    i >= 3
        && punct_at(toks, i - 1, ':')
        && punct_at(toks, i - 2, ':')
        && ident_at(toks, i - 3) == Some(head)
}

/// Index just past the `)`/`]`/`}` matching the opener at `open` (which
/// must sit on one of `(`, `[`, `{`). Returns `toks.len()` when
/// unbalanced.
pub fn skip_group(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks.get(open).map(|t| &t.kind) {
        Some(TokKind::Punct('(')) => ('(', ')'),
        Some(TokKind::Punct('[')) => ('[', ']'),
        Some(TokKind::Punct('{')) => ('{', '}'),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if punct_at(toks, i, o) {
            depth += 1;
        } else if punct_at(toks, i, c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}
