//! The rank-table extractor: rebuild the workspace lock-rank table from
//! source and hold `docs/CONCURRENCY.md` to it.
//!
//! Every rank-table entry in the workspace is a literal
//! `LockRank::new(<rank>, "<name>")` bound to a `const` — either a
//! scalar (`pub const STORE_META: LockRank = LockRank::new(45, …)`) or
//! one slot of a const array (`pub const STORE_SHARDS: [LockRank; …] =
//! […]`, the per-shard ranks). This pass scans every source file for
//! exactly those shapes, so the extracted table *is* the code's table —
//! no hand-maintained mirror to rot.
//!
//! The markdown renderer emits the table between
//! `<!-- rank-table:begin -->` / `<!-- rank-table:end -->` markers in
//! `docs/CONCURRENCY.md`; the default run diffs the generated block
//! against the checked-in one and reports drift as a finding, and
//! `--write-docs` rewrites the block in place. Duplicate rank numbers
//! across distinct consts are reported too — the runtime checker treats
//! equal ranks as an inversion, so an accidental reuse is a bug even if
//! the two locks are never nested today.

use crate::findings::Finding;
use crate::lex::{ident_at, lex, punct_at, strip_test_regions, Tok, TokKind};

/// One named rank-table entry extracted from source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankEntry {
    /// The `const` identifier (`STORE_META`, `STORE_SHARDS`, …).
    pub const_name: String,
    /// Lowest rank the const covers (scalar: the rank itself).
    pub lo: u16,
    /// Highest rank (scalar: the rank itself; arrays: the last slot).
    pub hi: u16,
    /// The human lock name from the first `LockRank::new` literal; for
    /// arrays, the shared prefix plus an index range.
    pub lock_name: String,
    /// Workspace-relative defining file.
    pub file: String,
    pub line: usize,
}

impl RankEntry {
    pub fn is_array(&self) -> bool {
        self.lo != self.hi
    }
}

/// The extracted table, sorted by rank.
#[derive(Debug, Default)]
pub struct RankTable {
    pub entries: Vec<RankEntry>,
}

impl RankTable {
    /// Look up a const name (`STORE_SHARDS`, `ENGINE_METRICS`, …).
    pub fn by_const(&self, name: &str) -> Option<&RankEntry> {
        self.entries.iter().find(|e| e.const_name == name)
    }
}

/// Scan `files` (path, source) for rank-table consts.
pub fn extract(files: &[(String, String)]) -> RankTable {
    let mut entries = Vec::new();
    for (path, src) in files {
        let toks = strip_test_regions(lex(src).toks);
        extract_file(path, &toks, &mut entries);
    }
    entries.sort_by(|a, b| (a.lo, a.hi, &a.const_name).cmp(&(b.lo, b.hi, &b.const_name)));
    RankTable { entries }
}

fn extract_file(path: &str, toks: &[Tok], out: &mut Vec<RankEntry>) {
    let mut i = 0usize;
    while i < toks.len() {
        // `const NAME : LockRank = …` or `const NAME : [ LockRank ; … ] = …`
        if ident_at(toks, i) == Some("const") {
            let Some(name) = ident_at(toks, i + 1) else {
                i += 1;
                continue;
            };
            let name = name.to_string();
            let line = toks[i + 1].line;
            let mut j = i + 2;
            if !punct_at(toks, j, ':') {
                i += 1;
                continue;
            }
            j += 1;
            if punct_at(toks, j, '[') {
                // Array type `[LockRank; N]`: hop the whole type group so
                // its `;` does not read as the declaration's end.
                if ident_at(toks, j + 1) != Some("LockRank") {
                    i += 1;
                    continue;
                }
                j = crate::lex::skip_group(toks, j);
            } else if ident_at(toks, j) != Some("LockRank") {
                i += 1;
                continue;
            }
            // Collect every `LockRank::new(N, "name")` literal in the
            // initializer, up to the terminating `;`.
            let mut ranks: Vec<(u16, String)> = Vec::new();
            while j < toks.len() && !punct_at(toks, j, ';') {
                if ident_at(toks, j) == Some("new")
                    && punct_at(toks, j + 1, '(')
                    && crate::lex::pathed_from(toks, j, "LockRank")
                {
                    let num = match toks.get(j + 2).map(|t| &t.kind) {
                        Some(TokKind::Num(n)) => n.parse::<u16>().ok(),
                        _ => None,
                    };
                    let label = match toks.get(j + 4).map(|t| &t.kind) {
                        Some(TokKind::Str(s)) if punct_at(toks, j + 3, ',') => Some(s.clone()),
                        _ => None,
                    };
                    if let (Some(num), Some(label)) = (num, label) {
                        ranks.push((num, label));
                    }
                }
                j += 1;
            }
            if !ranks.is_empty() {
                let lo = ranks.iter().map(|r| r.0).min().unwrap_or(0);
                let hi = ranks.iter().map(|r| r.0).max().unwrap_or(0);
                let lock_name = if ranks.len() > 1 {
                    // Arrays share a name prefix (`basis store shard 0…15`):
                    // render the common prefix with the slot range.
                    let first = &ranks[0].1;
                    let prefix = first.trim_end_matches(|c: char| c.is_ascii_digit());
                    format!("{prefix}0…{}", ranks.len() - 1)
                } else {
                    ranks[0].1.clone()
                };
                out.push(RankEntry {
                    const_name: name,
                    lo,
                    hi,
                    lock_name,
                    file: path.to_string(),
                    line,
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Duplicate-rank findings: the runtime checker treats equal ranks as an
/// inversion, so two consts sharing a number is a table bug.
pub fn duplicate_findings(table: &RankTable) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, a) in table.entries.iter().enumerate() {
        for b in &table.entries[i + 1..] {
            if a.lo <= b.hi && b.lo <= a.hi {
                out.push(Finding::new(
                    "rank-table",
                    &b.file,
                    b.line,
                    format!(
                        "rank range {}–{} of `{}` overlaps `{}` ({}–{}, {}:{}) — every \
                         lock needs a distinct rank or the runtime checker will refuse \
                         legal nestings",
                        b.lo, b.hi, b.const_name, a.const_name, a.lo, a.hi, a.file, a.line
                    ),
                ));
            }
        }
    }
    out
}

pub const BEGIN_MARKER: &str = "<!-- rank-table:begin (generated by `cargo run -p analysis -- --write-docs`; do not edit by hand) -->";
pub const END_MARKER: &str = "<!-- rank-table:end -->";

/// Render the markdown block that belongs between the markers.
pub fn render_markdown(table: &RankTable) -> String {
    let mut out = String::new();
    out.push_str("| rank | lock | const | defined in |\n");
    out.push_str("|-----:|------|-------|------------|\n");
    for e in &table.entries {
        let rank = if e.is_array() {
            format!("{}–{}", e.lo, e.hi)
        } else {
            format!("{}", e.lo)
        };
        out.push_str(&format!(
            "| {} | `{}` | `{}` | `{}` |\n",
            rank, e.lock_name, e.const_name, e.file
        ));
    }
    out
}

/// Replace the marker-delimited block in `docs`, or `None` if the
/// markers are missing/misordered.
pub fn rewrite_docs(docs: &str, table: &RankTable) -> Option<String> {
    let begin = docs.find(BEGIN_MARKER)?;
    let end_at = docs.find(END_MARKER)?;
    if end_at < begin {
        return None;
    }
    let mut out = String::with_capacity(docs.len());
    out.push_str(&docs[..begin + BEGIN_MARKER.len()]);
    out.push('\n');
    out.push_str(&render_markdown(table));
    out.push_str(&docs[end_at..]);
    Some(out)
}

/// Drift check: a finding when the checked-in block differs from the
/// generated one (or the markers are missing).
pub fn drift_finding(docs_path: &str, docs: &str, table: &RankTable) -> Option<Finding> {
    let Some(rewritten) = rewrite_docs(docs, table) else {
        return Some(Finding::new(
            "rank-table",
            docs_path,
            1,
            format!(
                "missing `{BEGIN_MARKER}` / `{END_MARKER}` markers — the rank table must \
                 be the generated block"
            ),
        ));
    };
    if rewritten != docs {
        // Point at the first differing line inside the docs.
        let line = docs
            .lines()
            .zip(rewritten.lines())
            .position(|(a, b)| a != b)
            .map(|n| n + 1)
            .unwrap_or(1);
        return Some(Finding::new(
            "rank-table",
            docs_path,
            line,
            "lock-rank table drifted from source — run \
             `cargo run -p analysis -- --write-docs` and commit the result"
                .into(),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(src: &str) -> RankTable {
        extract(&[("crates/x/src/sync.rs".into(), src.into())])
    }

    #[test]
    fn extracts_scalar_and_array_consts() {
        let src = r#"
            pub const META: LockRank = LockRank::new(45, "store meta");
            pub const SHARDS: [LockRank; 3] = [
                LockRank::new(50, "shard 0"),
                LockRank::new(51, "shard 1"),
                LockRank::new(52, "shard 2"),
            ];
        "#;
        let table = table_of(src);
        assert_eq!(table.entries.len(), 2);
        let meta = table.by_const("META").unwrap();
        assert_eq!((meta.lo, meta.hi), (45, 45));
        assert_eq!(meta.lock_name, "store meta");
        let shards = table.by_const("SHARDS").unwrap();
        assert_eq!((shards.lo, shards.hi), (50, 52));
        assert!(shards.is_array());
        assert_eq!(shards.lock_name, "shard 0…2");
    }

    #[test]
    fn table_is_sorted_by_rank_across_files() {
        let table = extract(&[
            (
                "b.rs".into(),
                "pub const HI: LockRank = LockRank::new(90, \"hi\");".into(),
            ),
            (
                "a.rs".into(),
                "pub const LO: LockRank = LockRank::new(10, \"lo\");".into(),
            ),
        ]);
        let ranks: Vec<u16> = table.entries.iter().map(|e| e.lo).collect();
        assert_eq!(ranks, [10, 90]);
    }

    #[test]
    fn duplicate_ranks_are_findings() {
        let src = r#"
            pub const A: LockRank = LockRank::new(30, "a");
            pub const B: LockRank = LockRank::new(30, "b");
        "#;
        let dupes = duplicate_findings(&table_of(src));
        assert_eq!(dupes.len(), 1);
        assert!(dupes[0].message.contains('A') && dupes[0].message.contains('B'));
    }

    #[test]
    fn rank_inside_test_module_is_invisible() {
        let src = r#"
            pub const A: LockRank = LockRank::new(30, "a");
            #[cfg(test)]
            mod tests {
                pub const FAKE: LockRank = LockRank::new(30, "fake");
            }
        "#;
        let table = table_of(src);
        assert_eq!(table.entries.len(), 1);
        assert!(duplicate_findings(&table).is_empty());
    }

    #[test]
    fn docs_round_trip_and_drift() {
        let table = table_of("pub const A: LockRank = LockRank::new(10, \"a lock\");");
        let docs = format!("# Title\n\n{BEGIN_MARKER}\nstale\n{END_MARKER}\n\ntail\n");
        let drift = drift_finding("docs/CONCURRENCY.md", &docs, &table);
        assert!(drift.is_some(), "stale block must drift");
        let rewritten = rewrite_docs(&docs, &table).unwrap();
        assert!(rewritten.contains("| 10 | `a lock` | `A` |"));
        assert!(drift_finding("docs/CONCURRENCY.md", &rewritten, &table).is_none());
        // Idempotent.
        assert_eq!(rewrite_docs(&rewritten, &table).unwrap(), rewritten);
    }

    #[test]
    fn missing_markers_is_a_finding() {
        let table = table_of("pub const A: LockRank = LockRank::new(10, \"a\");");
        let f = drift_finding("docs/CONCURRENCY.md", "no markers here", &table).unwrap();
        assert!(f.message.contains("markers"));
    }
}
