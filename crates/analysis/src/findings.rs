//! The analyzer's unified finding type and its machine-readable form.
//!
//! Every pass — lint, lock-order, map-iter, rank-table — reports
//! [`Finding`]s. The human form (`Display`) is one line per finding in
//! `file:line: [pass] message` shape, which the CI problem matcher
//! (`.github/problem-matchers/analysis.json`) turns into diff
//! annotations. The machine form ([`render_json`]) is a versioned JSON
//! document the CI gate parses and asserts empty of non-allowed entries.
//!
//! `allowed` findings — sites covered by an `// analysis:allow(pass):
//! reason` marker — still travel in the JSON (an allow is a reviewed
//! fact worth surfacing, not a deletion) but never fail the gate.

use std::fmt;

/// One analyzer finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which pass produced it: `lint:<rule>`, `lock-order`, `map-iter`,
    /// `rank-table`.
    pub pass: &'static str,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    pub message: String,
    /// Covered by an inline allow marker (or allowlist grant): reported
    /// for the record, not gated on.
    pub allowed: bool,
}

impl Finding {
    pub fn new(pass: &'static str, file: &str, line: usize, message: String) -> Self {
        Finding {
            pass,
            file: file.to_string(),
            line,
            message,
            allowed: false,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.file,
            self.line,
            self.pass,
            self.message,
            if self.allowed { " (allowed)" } else { "" }
        )
    }
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the findings document: version, per-finding records sorted the
/// way the human output prints them, and a summary block. `files` is the
/// number of sources scanned (so "0 findings over 0 files" cannot read
/// as a clean run).
pub fn render_json(findings: &[Finding], files: usize) -> String {
    let active = findings.iter().filter(|f| !f.allowed).count();
    let allowed = findings.len() - active;
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"summary\": {{ \"files\": {files}, \"findings\": {}, \"active\": {active}, \"allowed\": {allowed} }},\n",
        findings.len()
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"allowed\": {}, \"message\": \"{}\" }}",
            json_escape(f.pass),
            json_escape(&f.file),
            f.line,
            f.allowed,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let findings = vec![
            Finding::new("lock-order", "a/b.rs", 3, "holds \"x\"\nthen y".into()),
            Finding {
                allowed: true,
                ..Finding::new("map-iter", "c.rs", 9, "iterates".into())
            },
        ];
        let doc = render_json(&findings, 42);
        assert!(doc.contains("\"files\": 42"));
        assert!(doc.contains("\"active\": 1"));
        assert!(doc.contains("\"allowed\": 1"));
        assert!(doc.contains("holds \\\"x\\\"\\nthen y"));
        // Hand-check the document is at least structurally balanced.
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced braces in {doc}"
        );
    }

    #[test]
    fn empty_document_still_carries_the_file_count() {
        let doc = render_json(&[], 7);
        assert!(doc.contains("\"findings\": []") || doc.contains("\"findings\": [\n]"));
        assert!(doc.contains("\"files\": 7"));
    }
}
