//! Negative tests for the analyzer gate: each seeded fixture tree under
//! `fixtures/` must fail the real binary with **exactly one** active
//! finding, at the expected span — proving the gate actually fires —
//! and the repository itself must pass it.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_analyzer(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_analysis"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("invariant: the analysis binary was built alongside this test")
}

/// Active (non-allowed) finding lines from a run's stdout.
fn active_findings(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| l.contains(": [") && !l.ends_with("(allowed)"))
        .map(str::to_string)
        .collect()
}

/// One fixture = one failing run with one active finding at one span.
fn assert_single_finding(name: &str, expected_prefix: &str) {
    let out = run_analyzer(&fixture(name), &[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "fixture `{name}` must fail the gate; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let findings = active_findings(&out);
    assert_eq!(
        findings.len(),
        1,
        "fixture `{name}` must produce exactly one active finding, got {findings:#?}"
    );
    assert!(
        findings[0].starts_with(expected_prefix),
        "fixture `{name}`: expected span `{expected_prefix}…`, got `{}`",
        findings[0]
    );
}

#[test]
fn seeded_lock_inversion_fails_the_gate_at_its_line() {
    assert_single_finding("inversion", "crates/mc/src/lib.rs:31: [lock-order]");
}

#[test]
fn seeded_unsorted_map_leak_fails_the_gate_at_its_line() {
    assert_single_finding("map_leak", "crates/mc/src/lib.rs:16: [map-iter]");
}

#[test]
fn seeded_rank_table_drift_fails_the_gate_in_the_docs() {
    assert_single_finding("drift", "docs/CONCURRENCY.md:6: [rank-table]");
}

#[test]
fn seeded_fixture_writes_machine_readable_findings() {
    let json_path = std::env::temp_dir().join("analysis-fixture-inversion.json");
    let out = run_analyzer(
        &fixture("inversion"),
        &[
            "--json",
            json_path.to_str().expect("invariant: utf-8 temp path"),
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    let doc = std::fs::read_to_string(&json_path).expect("JSON findings file written");
    let _ = std::fs::remove_file(&json_path);
    assert!(doc.contains("\"version\": 1"), "{doc}");
    assert!(doc.contains("\"active\": 1"), "{doc}");
    assert!(doc.contains("\"pass\": \"lock-order\""), "{doc}");
    assert!(doc.contains("\"file\": \"crates/mc/src/lib.rs\""), "{doc}");
    assert!(doc.contains("\"line\": 31"), "{doc}");
}

/// The gate the fixtures prove can fire must not fire on the repository
/// itself: the checked-in tree is clean modulo audited allows.
#[test]
fn repository_tree_passes_the_gate() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let out = run_analyzer(&repo_root, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    assert!(active_findings(&out).is_empty(), "stdout:\n{stdout}");
    assert!(stdout.contains("analysis clean"), "stdout:\n{stdout}");
}
