//! Borrowed row views over a [`crate::table::Table`].

use crate::error::DataResult;
use crate::table::Table;
use crate::value::Value;

/// A lightweight view of one row of a table.
///
/// Rows borrow the table; fetching a cell materializes a [`Value`] on demand
/// (cloning only for strings). This keeps per-world result handling cheap in
/// the simulation loop.
#[derive(Debug, Clone, Copy)]
pub struct Row<'t> {
    table: &'t Table,
    index: usize,
}

impl<'t> Row<'t> {
    pub(crate) fn new(table: &'t Table, index: usize) -> Self {
        Row { table, index }
    }

    /// The row's position within its table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Cell by column name.
    pub fn get(&self, column: &str) -> DataResult<Value> {
        let idx = self.table.schema().index_of(column)?;
        self.table.column_at(idx).get(self.index)
    }

    /// Cell by column position.
    pub fn get_at(&self, column_idx: usize) -> DataResult<Value> {
        self.table.column_at(column_idx).get(self.index)
    }

    /// All cells, in schema order.
    pub fn values(&self) -> DataResult<Vec<Value>> {
        (0..self.table.schema().len())
            .map(|i| self.get_at(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::schema::{DataType, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    #[test]
    fn row_accessors() {
        let schema = Schema::of(&[("week", DataType::Int), ("demand", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::Int(0), Value::Float(10.5)]).unwrap();
        b.push_row(vec![Value::Int(1), Value::Float(11.25)])
            .unwrap();
        let t = b.finish();

        let row = t.row(1).unwrap();
        assert_eq!(row.index(), 1);
        assert_eq!(row.get("week").unwrap(), Value::Int(1));
        assert_eq!(row.get_at(1).unwrap(), Value::Float(11.25));
        assert_eq!(
            row.values().unwrap(),
            vec![Value::Int(1), Value::Float(11.25)]
        );
        assert!(row.get("nope").is_err());
    }
}
