//! Tables: a schema plus columnar data, with relational helpers.

use std::cmp::Ordering;
use std::fmt;

use crate::column::Column;
use crate::error::{DataError, DataResult};
use crate::row::Row;
use crate::schema::{DataType, Schema};
use crate::value::Value;

/// An in-memory relation.
///
/// Tables are the interchange format across the whole workspace: VG-Functions
/// *return* tables, the SQL executor *joins and derives* tables, and the
/// Storage Manager *caches* tables (as basis distributions).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.data_type))
            .collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Construct directly from columns. All columns must match the schema's
    /// types and have equal lengths.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> DataResult<Self> {
        if schema.len() != columns.len() {
            return Err(DataError::SchemaMismatch(format!(
                "{} fields but {} columns",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map(Column::len).unwrap_or(0);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.data_type != col.data_type() {
                return Err(DataError::SchemaMismatch(format!(
                    "column `{}` declared {} but stores {}",
                    field.name,
                    field.data_type,
                    col.data_type()
                )));
            }
            if col.len() != rows {
                return Err(DataError::SchemaMismatch(format!(
                    "column `{}` has {} rows, expected {}",
                    field.name,
                    col.len(),
                    rows
                )));
            }
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column by position. Panics on bad index (internal use only; external
    /// callers go through [`Table::column`]).
    pub(crate) fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> DataResult<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Borrowed view of row `idx`.
    pub fn row(&self, idx: usize) -> DataResult<Row<'_>> {
        if idx >= self.rows {
            return Err(DataError::RowOutOfBounds {
                index: idx,
                len: self.rows,
            });
        }
        Ok(Row::new(self, idx))
    }

    /// Iterate over all rows.
    pub fn rows(&self) -> impl Iterator<Item = Row<'_>> + '_ {
        (0..self.rows).map(move |i| Row::new(self, i))
    }

    /// Single cell by (row, column-name).
    pub fn cell(&self, row: usize, column: &str) -> DataResult<Value> {
        if row >= self.rows {
            return Err(DataError::RowOutOfBounds {
                index: row,
                len: self.rows,
            });
        }
        self.column(column)?.get(row)
    }

    /// A new table with only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> DataResult<Table> {
        let schema = self.schema.project(names)?;
        let mut columns = Vec::with_capacity(names.len());
        for name in names {
            columns.push(self.column(name)?.clone());
        }
        Ok(Table {
            schema,
            columns,
            rows: self.rows,
        })
    }

    /// A new table keeping only rows where `predicate` returns true.
    pub fn filter(
        &self,
        mut predicate: impl FnMut(Row<'_>) -> DataResult<bool>,
    ) -> DataResult<Table> {
        let mut mask = Vec::with_capacity(self.rows);
        for row in self.rows() {
            mask.push(predicate(row)?);
        }
        let kept = mask.iter().filter(|&&k| k).count();
        let columns = self
            .columns
            .iter()
            .map(|c| c.filter(&mask))
            .collect::<DataResult<Vec<_>>>()?;
        Ok(Table {
            schema: self.schema.clone(),
            columns,
            rows: kept,
        })
    }

    /// A new table sorted by the named column using the total value order.
    /// The sort is stable so ties preserve input order (important for
    /// deterministic optimizer output).
    pub fn sort_by(&self, column: &str, descending: bool) -> DataResult<Table> {
        let col = self.column(column)?;
        let mut perm: Vec<usize> = (0..self.rows).collect();
        let keys: Vec<Value> = (0..self.rows)
            .map(|i| col.get(i))
            .collect::<DataResult<Vec<_>>>()?;
        perm.sort_by(|&a, &b| {
            let ord = keys[a].total_cmp(&keys[b]);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        let columns = self
            .columns
            .iter()
            .map(|c| c.permute(&perm))
            .collect::<DataResult<Vec<_>>>()?;
        Ok(Table {
            schema: self.schema.clone(),
            columns,
            rows: self.rows,
        })
    }

    /// Vertically concatenate another table with an identical schema.
    pub fn append(&mut self, other: &Table) -> DataResult<()> {
        if self.schema != other.schema {
            return Err(DataError::SchemaMismatch(format!(
                "cannot append {} to {}",
                other.schema, self.schema
            )));
        }
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.extend_from(src)?;
        }
        self.rows += other.rows;
        Ok(())
    }

    /// Minimum of a numeric column (ignoring nulls); `None` if no values.
    pub fn min_f64(&self, column: &str) -> DataResult<Option<f64>> {
        Ok(self
            .column(column)?
            .numeric_values()?
            .into_iter()
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)))
    }

    /// Maximum of a numeric column (ignoring nulls); `None` if no values.
    pub fn max_f64(&self, column: &str) -> DataResult<Option<f64>> {
        Ok(self
            .column(column)?
            .numeric_values()?
            .into_iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)))
    }

    /// Mean of a numeric column (ignoring nulls); `None` if no values.
    pub fn mean_f64(&self, column: &str) -> DataResult<Option<f64>> {
        let vals = self.column(column)?.numeric_values()?;
        if vals.is_empty() {
            Ok(None)
        } else {
            Ok(Some(vals.iter().sum::<f64>() / vals.len() as f64))
        }
    }
}

impl fmt::Display for Table {
    /// Pretty-print in a psql-ish box layout; used by example binaries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|fd| fd.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut rendered: Vec<Vec<String>> = Vec::with_capacity(self.rows);
        for row in self.rows() {
            let mut cells = Vec::with_capacity(headers.len());
            for (c, width) in widths.iter_mut().enumerate() {
                let text = row.get_at(c).map_err(|_| fmt::Error)?.to_string();
                *width = (*width).max(text.len());
                cells.push(text);
            }
            rendered.push(cells);
        }
        let write_sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for w in &widths {
                write!(f, "+{}", "-".repeat(w + 2))?;
            }
            writeln!(f, "+")
        };
        write_sep(f)?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, "| {h:w$} ")?;
        }
        writeln!(f, "|")?;
        write_sep(f)?;
        for cells in &rendered {
            for (c, w) in cells.iter().zip(&widths) {
                write!(f, "| {c:>w$} ")?;
            }
            writeln!(f, "|")?;
        }
        write_sep(f)
    }
}

/// Row-at-a-time table construction.
///
/// The SQL executor emits derived rows one at a time; the builder validates
/// arity and types on each push so malformed scenarios fail with a positioned
/// error instead of corrupting columns.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(schema: Schema) -> Self {
        TableBuilder::with_capacity(schema, 0)
    }

    /// Start building with a row-capacity hint (one simulation run knows its
    /// week count up front).
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, rows))
            .collect();
        TableBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Append one row. The row must have exactly one value per column.
    ///
    /// On a type error the row is *not* partially applied: all cells are
    /// validated before any column is touched.
    pub fn push_row(&mut self, row: Vec<Value>) -> DataResult<()> {
        if row.len() != self.schema.len() {
            return Err(DataError::SchemaMismatch(format!(
                "row has {} values for {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        for (field, value) in self.schema.fields().iter().zip(&row) {
            if let Some(dt) = value.data_type() {
                let compatible = dt == field.data_type
                    || (field.data_type == DataType::Float && dt == DataType::Int);
                if !compatible {
                    return Err(DataError::TypeMismatch {
                        expected: match field.data_type {
                            DataType::Bool => "bool",
                            DataType::Int => "integer",
                            DataType::Float => "float",
                            DataType::Str => "string",
                        },
                        found: format!("{value:?} in column `{}`", field.name),
                    });
                }
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finalize into an immutable [`Table`].
    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn week_table() -> Table {
        let schema = Schema::of(&[("week", DataType::Int), ("demand", DataType::Float)]);
        let mut b = TableBuilder::with_capacity(schema, 4);
        for (w, d) in [(0i64, 10.0), (1, 12.5), (2, 9.0), (3, 15.0)] {
            b.push_row(vec![Value::Int(w), Value::Float(d)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn build_and_read() {
        let t = week_table();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.cell(2, "demand").unwrap(), Value::Float(9.0));
        assert!(t.cell(9, "demand").is_err());
        assert!(t.cell(0, "nope").is_err());
    }

    #[test]
    fn from_columns_validates_shape() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let ok = Table::from_columns(schema.clone(), vec![vec![1i64, 2].into_iter().collect()]);
        assert!(ok.is_ok());

        let wrong_len = Table::from_columns(
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![vec![1i64].into_iter().collect()],
        );
        assert!(wrong_len.is_err());

        let wrong_type = Table::from_columns(schema, vec![vec![1.0f64].into_iter().collect()]);
        assert!(wrong_type.is_err());

        let ragged = Table::from_columns(
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![
                vec![1i64, 2].into_iter().collect(),
                vec![1i64].into_iter().collect(),
            ],
        );
        assert!(ragged.is_err());
    }

    #[test]
    fn projection() {
        let t = week_table();
        let p = t.project(&["demand"]).unwrap();
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.num_rows(), 4);
        assert_eq!(p.cell(1, "demand").unwrap(), Value::Float(12.5));
    }

    #[test]
    fn filter_by_predicate() {
        let t = week_table();
        let f = t
            .filter(|row| Ok(row.get("demand")?.as_f64()? > 10.0))
            .unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.cell(0, "week").unwrap(), Value::Int(1));
        assert_eq!(f.cell(1, "week").unwrap(), Value::Int(3));
    }

    #[test]
    fn sort_ascending_descending() {
        let t = week_table();
        let asc = t.sort_by("demand", false).unwrap();
        assert_eq!(asc.cell(0, "week").unwrap(), Value::Int(2));
        let desc = t.sort_by("demand", true).unwrap();
        assert_eq!(desc.cell(0, "week").unwrap(), Value::Int(3));
    }

    #[test]
    fn append_requires_same_schema() {
        let mut t = week_table();
        let u = week_table();
        t.append(&u).unwrap();
        assert_eq!(t.num_rows(), 8);

        let other = Table::empty(Schema::of(&[("x", DataType::Int)]));
        assert!(t.append(&other).is_err());
    }

    #[test]
    fn aggregates() {
        let t = week_table();
        assert_eq!(t.min_f64("demand").unwrap(), Some(9.0));
        assert_eq!(t.max_f64("demand").unwrap(), Some(15.0));
        let mean = t.mean_f64("demand").unwrap().unwrap();
        assert!((mean - 11.625).abs() < 1e-12);
        let empty = Table::empty(Schema::of(&[("v", DataType::Float)]));
        assert_eq!(empty.mean_f64("v").unwrap(), None);
    }

    #[test]
    fn push_row_is_atomic_on_type_error() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        // second cell is bad; first must not be committed
        assert!(b
            .push_row(vec![Value::Int(1), Value::Str("x".into())])
            .is_err());
        assert_eq!(b.len(), 0);
        let t = b.finish();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.column("a").unwrap().len(), 0);
    }

    #[test]
    fn display_renders_box() {
        let t = week_table();
        let s = t.to_string();
        assert!(s.contains("| week |"));
        assert!(s.contains("12.5"));
    }

    #[test]
    fn nulls_flow_through_builder() {
        let schema = Schema::of(&[("v", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Float(2.0)]).unwrap();
        let t = b.finish();
        assert_eq!(t.column("v").unwrap().null_count(), 1);
        assert_eq!(t.mean_f64("v").unwrap(), Some(2.0));
    }
}
