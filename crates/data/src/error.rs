//! Error types for the relational substrate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type DataResult<T> = Result<T, DataError>;

/// Errors surfaced by relational operations.
///
/// The Monte Carlo engine evaluates user-authored scenarios, so type errors
/// and shape mismatches are expected at runtime and must be reportable rather
/// than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A column name was not found in a schema.
    UnknownColumn(String),
    /// A value of one type was used where another was required.
    TypeMismatch {
        /// What the operation required.
        expected: &'static str,
        /// What it actually received.
        found: String,
    },
    /// Two relations (or a relation and a row) disagreed on arity or types.
    SchemaMismatch(String),
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows actually present.
        len: usize,
    },
    /// An arithmetic operation was invalid (e.g. string + int).
    InvalidOperation(String),
    /// A duplicate column name was supplied to a schema.
    DuplicateColumn(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DataError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DataError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            DataError::RowOutOfBounds { index, len } => {
                write!(
                    f,
                    "row index {index} out of bounds for table with {len} rows"
                )
            }
            DataError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            DataError::DuplicateColumn(name) => write!(f, "duplicate column name `{name}`"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            DataError::UnknownColumn("demand".into()).to_string(),
            "unknown column `demand`"
        );
        assert_eq!(
            DataError::TypeMismatch {
                expected: "float",
                found: "Str(\"x\")".into()
            }
            .to_string(),
            "type mismatch: expected float, found Str(\"x\")"
        );
        assert_eq!(
            DataError::RowOutOfBounds { index: 9, len: 3 }.to_string(),
            "row index 9 out of bounds for table with 3 rows"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
