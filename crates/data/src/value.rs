//! Dynamically typed scalar values with SQL-flavoured semantics.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{DataError, DataResult};
use crate::schema::DataType;

/// A single scalar cell.
///
/// `Value` follows SQL conventions where they matter to the engine:
///
/// * `Null` is absorbing for arithmetic (`NULL + x = NULL`),
/// * comparisons against `Null` yield `Null`-ish results, which the
///   expression evaluator in `prophet-sql` folds to `false` in predicates,
/// * integers promote to floats when mixed in arithmetic.
///
/// Unlike SQL, [`Value::total_cmp`] defines a *total* order (Null < Bool <
/// Int/Float < Str) so that values can be used as sort keys and in ordered
/// collections — the offline optimizer sorts candidate parameter points by
/// their objective values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL / missing data.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The dynamic type of this value, or `None` for `Null` (which inhabits
    /// every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as a float, promoting integers and booleans.
    ///
    /// This is the numeric gateway used by every aggregate: Monte Carlo
    /// estimates are always computed in `f64`.
    pub fn as_f64(&self) -> DataResult<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(DataError::TypeMismatch {
                expected: "numeric",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Interpret as an integer. Floats are accepted only when they are
    /// integral, because parameter values (weeks, counts) must be exact.
    pub fn as_i64(&self) -> DataResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i64),
            other => Err(DataError::TypeMismatch {
                expected: "integer",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Interpret as a boolean. Numbers follow SQL Server's implicit rule:
    /// non-zero is true.
    pub fn as_bool(&self) -> DataResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            Value::Float(f) => Ok(*f != 0.0),
            other => Err(DataError::TypeMismatch {
                expected: "boolean",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> DataResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DataError::TypeMismatch {
                expected: "string",
                found: format!("{other:?}"),
            }),
        }
    }

    /// SQL-style addition with null absorption and int→float promotion.
    pub fn add(&self, rhs: &Value) -> DataResult<Value> {
        self.numeric_binop(rhs, "+", |a, b| a + b, |a, b| a.checked_add(b))
    }

    /// SQL-style subtraction.
    pub fn sub(&self, rhs: &Value) -> DataResult<Value> {
        self.numeric_binop(rhs, "-", |a, b| a - b, |a, b| a.checked_sub(b))
    }

    /// SQL-style multiplication.
    pub fn mul(&self, rhs: &Value) -> DataResult<Value> {
        self.numeric_binop(rhs, "*", |a, b| a * b, |a, b| a.checked_mul(b))
    }

    /// SQL-style division. Integer division by zero yields `Null` (matching
    /// how Prophet's aggregates treat undefined cells) rather than an error,
    /// because a single degenerate world must not abort a whole simulation.
    pub fn div(&self, rhs: &Value) -> DataResult<Value> {
        if self.is_null() || rhs.is_null() {
            return Ok(Value::Null);
        }
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => {
                let a = self.as_f64()?;
                let b = rhs.as_f64()?;
                if b == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(a / b))
                }
            }
        }
    }

    /// Remainder, with the same zero handling as [`Value::div`].
    pub fn rem(&self, rhs: &Value) -> DataResult<Value> {
        if self.is_null() || rhs.is_null() {
            return Ok(Value::Null);
        }
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => {
                let a = self.as_f64()?;
                let b = rhs.as_f64()?;
                if b == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(a % b))
                }
            }
        }
    }

    /// Unary negation.
    pub fn neg(&self) -> DataResult<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(DataError::InvalidOperation(format!(
                "cannot negate {other:?}"
            ))),
        }
    }

    fn numeric_binop(
        &self,
        rhs: &Value,
        op: &'static str,
        ff: impl Fn(f64, f64) -> f64,
        ii: impl Fn(i64, i64) -> Option<i64>,
    ) -> DataResult<Value> {
        if self.is_null() || rhs.is_null() {
            return Ok(Value::Null);
        }
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => match ii(*a, *b) {
                Some(v) => Ok(Value::Int(v)),
                // Overflow falls back to float arithmetic instead of wrapping:
                // capacity models legitimately multiply large core counts.
                None => Ok(Value::Float(ff(*a as f64, *b as f64))),
            },
            (Value::Str(_), _) | (_, Value::Str(_)) | (Value::Bool(_), _) | (_, Value::Bool(_)) => {
                Err(DataError::InvalidOperation(format!(
                    "{self:?} {op} {rhs:?}"
                )))
            }
            _ => Ok(Value::Float(ff(self.as_f64()?, rhs.as_f64()?))),
        }
    }

    /// SQL comparison: returns `None` when either side is `Null` (unknown),
    /// otherwise the ordering between comparable values.
    pub fn sql_cmp(&self, rhs: &Value) -> DataResult<Option<Ordering>> {
        if self.is_null() || rhs.is_null() {
            return Ok(None);
        }
        match (self, rhs) {
            (Value::Bool(a), Value::Bool(b)) => Ok(Some(a.cmp(b))),
            (Value::Str(a), Value::Str(b)) => Ok(Some(a.cmp(b))),
            (Value::Str(_), _) | (_, Value::Str(_)) | (Value::Bool(_), _) | (_, Value::Bool(_)) => {
                Err(DataError::InvalidOperation(format!(
                    "cannot compare {self:?} with {rhs:?}"
                )))
            }
            _ => {
                let a = self.as_f64()?;
                let b = rhs.as_f64()?;
                Ok(a.partial_cmp(&b))
            }
        }
    }

    /// Total order over all values: `Null < Bool < numeric < Str`.
    ///
    /// Floats are ordered via [`f64::total_cmp`], and integers compare with
    /// floats numerically, so `Int(2) == Float(2.0)` under this ordering.
    pub fn total_cmp(&self, rhs: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, rhs) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            _ => rank(self).cmp(&rank(rhs)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_promotes_int_to_float() {
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(Value::Int(2).mul(&Value::Int(3)).unwrap(), Value::Int(6));
        assert_eq!(
            Value::Float(1.0).sub(&Value::Int(1)).unwrap(),
            Value::Float(0.0)
        );
    }

    #[test]
    fn null_absorbs_arithmetic() {
        for v in [Value::Int(1), Value::Float(2.0)] {
            assert_eq!(v.add(&Value::Null).unwrap(), Value::Null);
            assert_eq!(Value::Null.mul(&v).unwrap(), Value::Null);
        }
    }

    #[test]
    fn division_by_zero_yields_null() {
        assert_eq!(Value::Int(4).div(&Value::Int(0)).unwrap(), Value::Null);
        assert_eq!(
            Value::Float(4.0).div(&Value::Float(0.0)).unwrap(),
            Value::Null
        );
        assert_eq!(Value::Int(7).rem(&Value::Int(0)).unwrap(), Value::Null);
    }

    #[test]
    fn integer_division_truncates() {
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(Value::Int(7).rem(&Value::Int(2)).unwrap(), Value::Int(1));
    }

    #[test]
    fn integer_overflow_falls_back_to_float() {
        let big = Value::Int(i64::MAX);
        match big.add(&Value::Int(1)).unwrap() {
            Value::Float(f) => assert!(f > 9.2e18),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn string_arithmetic_is_rejected() {
        assert!(Value::Str("a".into()).add(&Value::Int(1)).is_err());
        assert!(Value::Bool(true).mul(&Value::Int(1)).is_err());
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null).unwrap(), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_rejects_cross_kind() {
        assert!(Value::Str("1".into()).sql_cmp(&Value::Int(1)).is_err());
        assert!(Value::Bool(true).sql_cmp(&Value::Int(1)).is_err());
    }

    #[test]
    fn total_cmp_is_total_and_ranks_kinds() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(0.5),
            Value::Int(1),
            Value::Str("a".into()),
        ];
        for w in vals.windows(2) {
            assert_ne!(
                w[0].total_cmp(&w[1]),
                Ordering::Greater,
                "{:?} !<= {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn casts_behave() {
        assert_eq!(Value::Float(3.0).as_i64().unwrap(), 3);
        assert!(Value::Float(3.5).as_i64().is_err());
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert!(Value::Str("x".into()).as_f64().is_err());
        assert!(!Value::Int(0).as_bool().unwrap());
        assert!(Value::Int(7).as_bool().unwrap());
    }

    #[test]
    fn display_is_sql_like() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("azure".into()).to_string(), "azure");
    }

    #[test]
    fn from_option_maps_none_to_null() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }
}
