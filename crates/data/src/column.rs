//! Typed, nullable, growable columns.

use crate::error::{DataError, DataResult};
use crate::schema::DataType;
use crate::value::Value;

/// A single column of homogeneously typed, nullable cells.
///
/// Storage is one `Vec<Option<T>>` per type rather than `Vec<Value>`: the
/// Monte Carlo engine pushes millions of numeric cells per sweep and the
/// per-cell enum tag plus string capacity of `Value` would triple memory
/// traffic. `Option<f64>`/`Option<i64>` are niche-free but still half the
/// size of `Value`, and the common all-float columns stay cache friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Boolean cells.
    Bool(Vec<Option<bool>>),
    /// Integer cells.
    Int(Vec<Option<i64>>),
    /// Float cells.
    Float(Vec<Option<f64>>),
    /// String cells.
    Str(Vec<Option<String>>),
}

impl Column {
    /// An empty column of the given type with capacity for `cap` rows.
    pub fn with_capacity(data_type: DataType, cap: usize) -> Self {
        match data_type {
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
        }
    }

    /// An empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        Column::with_capacity(data_type, 0)
    }

    /// The column's declared type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool(_) => DataType::Bool,
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True if the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch cell `idx` as a [`Value`] (clones strings).
    pub fn get(&self, idx: usize) -> DataResult<Value> {
        let len = self.len();
        if idx >= len {
            return Err(DataError::RowOutOfBounds { index: idx, len });
        }
        Ok(match self {
            Column::Bool(v) => v[idx].map(Value::Bool).unwrap_or(Value::Null),
            Column::Int(v) => v[idx].map(Value::Int).unwrap_or(Value::Null),
            Column::Float(v) => v[idx].map(Value::Float).unwrap_or(Value::Null),
            Column::Str(v) => v[idx].clone().map(Value::Str).unwrap_or(Value::Null),
        })
    }

    /// Push a value, coercing `Int` into a `Float` column (the only implicit
    /// widening the engine performs). Any other mismatch is an error.
    pub fn push(&mut self, value: Value) -> DataResult<()> {
        match (self, value) {
            (Column::Bool(v), Value::Bool(b)) => v.push(Some(b)),
            (Column::Int(v), Value::Int(i)) => v.push(Some(i)),
            (Column::Float(v), Value::Float(f)) => v.push(Some(f)),
            (Column::Float(v), Value::Int(i)) => v.push(Some(i as f64)),
            (Column::Str(v), Value::Str(s)) => v.push(Some(s)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Null) => v.push(None),
            (col, value) => {
                return Err(DataError::TypeMismatch {
                    expected: match col.data_type() {
                        DataType::Bool => "bool",
                        DataType::Int => "integer",
                        DataType::Float => "float",
                        DataType::Str => "string",
                    },
                    found: format!("{value:?}"),
                })
            }
        }
        Ok(())
    }

    /// Direct access to float cells; `None` for non-float columns.
    ///
    /// The aggregation hot path iterates float columns without going through
    /// `Value`.
    pub fn as_float_slice(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to integer cells; `None` for non-int columns.
    pub fn as_int_slice(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// All cells as `f64` (ints and bools promoted, nulls skipped).
    /// Used to hand a column to the statistics kernels.
    pub fn numeric_values(&self) -> DataResult<Vec<f64>> {
        let mut out = Vec::with_capacity(self.len());
        match self {
            Column::Float(v) => out.extend(v.iter().flatten().copied()),
            Column::Int(v) => out.extend(v.iter().flatten().map(|i| *i as f64)),
            Column::Bool(v) => out.extend(v.iter().flatten().map(|b| if *b { 1.0 } else { 0.0 })),
            Column::Str(_) => {
                return Err(DataError::TypeMismatch {
                    expected: "numeric column",
                    found: "string column".into(),
                })
            }
        }
        Ok(out)
    }

    /// Keep only the cells whose index is flagged in `mask`.
    /// `mask.len()` must equal `self.len()`.
    pub fn filter(&self, mask: &[bool]) -> DataResult<Column> {
        if mask.len() != self.len() {
            return Err(DataError::SchemaMismatch(format!(
                "filter mask has {} entries for a column of {} cells",
                mask.len(),
                self.len()
            )));
        }
        fn apply<T: Clone>(cells: &[Option<T>], mask: &[bool]) -> Vec<Option<T>> {
            cells
                .iter()
                .zip(mask)
                .filter(|(_, keep)| **keep)
                .map(|(c, _)| c.clone())
                .collect()
        }
        Ok(match self {
            Column::Bool(v) => Column::Bool(apply(v, mask)),
            Column::Int(v) => Column::Int(apply(v, mask)),
            Column::Float(v) => Column::Float(apply(v, mask)),
            Column::Str(v) => Column::Str(apply(v, mask)),
        })
    }

    /// Reorder cells by `perm` (a permutation of `0..len`). Used by sorts.
    pub fn permute(&self, perm: &[usize]) -> DataResult<Column> {
        if perm.len() != self.len() {
            return Err(DataError::SchemaMismatch(format!(
                "permutation has {} entries for a column of {} cells",
                perm.len(),
                self.len()
            )));
        }
        fn apply<T: Clone>(cells: &[Option<T>], perm: &[usize]) -> Vec<Option<T>> {
            perm.iter().map(|&i| cells[i].clone()).collect()
        }
        Ok(match self {
            Column::Bool(v) => Column::Bool(apply(v, perm)),
            Column::Int(v) => Column::Int(apply(v, perm)),
            Column::Float(v) => Column::Float(apply(v, perm)),
            Column::Str(v) => Column::Str(apply(v, perm)),
        })
    }

    /// Append all cells of `other` (must be same type).
    pub fn extend_from(&mut self, other: &Column) -> DataResult<()> {
        match (self, other) {
            (Column::Bool(a), Column::Bool(b)) => a.extend(b.iter().cloned()),
            (Column::Int(a), Column::Int(b)) => a.extend(b.iter().cloned()),
            (Column::Float(a), Column::Float(b)) => a.extend(b.iter().cloned()),
            (Column::Float(a), Column::Int(b)) => a.extend(b.iter().map(|c| c.map(|i| i as f64))),
            (Column::Str(a), Column::Str(b)) => a.extend(b.iter().cloned()),
            (a, b) => {
                return Err(DataError::SchemaMismatch(format!(
                    "cannot append {} column to {} column",
                    b.data_type(),
                    a.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Count of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Bool(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Int(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Float(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Str(v) => v.iter().filter(|c| c.is_none()).count(),
        }
    }
}

impl FromIterator<f64> for Column {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Column::Float(iter.into_iter().map(Some).collect())
    }
}

impl FromIterator<i64> for Column {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        Column::Int(iter.into_iter().map(Some).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Float(1.5)).unwrap();
        c.push(Value::Int(2)).unwrap(); // implicit widening
        c.push(Value::Null).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0).unwrap(), Value::Float(1.5));
        assert_eq!(c.get(1).unwrap(), Value::Float(2.0));
        assert_eq!(c.get(2).unwrap(), Value::Null);
        assert!(c.get(3).is_err());
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(DataType::Int);
        assert!(c.push(Value::Str("x".into())).is_err());
        assert!(c.push(Value::Float(0.5)).is_err());
        // failed pushes must not grow the column
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn numeric_values_promotes_and_skips_nulls() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.numeric_values().unwrap(), vec![1.0, 3.0]);

        let b = Column::Bool(vec![Some(true), Some(false), None]);
        assert_eq!(b.numeric_values().unwrap(), vec![1.0, 0.0]);

        let s = Column::Str(vec![Some("x".into())]);
        assert!(s.numeric_values().is_err());
    }

    #[test]
    fn filter_and_permute() {
        let c: Column = vec![10i64, 20, 30, 40].into_iter().collect();
        let f = c.filter(&[true, false, true, false]).unwrap();
        assert_eq!(f.get(0).unwrap(), Value::Int(10));
        assert_eq!(f.get(1).unwrap(), Value::Int(30));
        assert_eq!(f.len(), 2);

        let p = c.permute(&[3, 2, 1, 0]).unwrap();
        assert_eq!(p.get(0).unwrap(), Value::Int(40));
        assert_eq!(p.get(3).unwrap(), Value::Int(10));

        assert!(c.filter(&[true]).is_err());
        assert!(c.permute(&[0]).is_err());
    }

    #[test]
    fn extend_from_widens_ints_into_floats() {
        let mut f: Column = vec![1.0f64].into_iter().collect();
        let i: Column = vec![2i64, 3].into_iter().collect();
        f.extend_from(&i).unwrap();
        assert_eq!(f.numeric_values().unwrap(), vec![1.0, 2.0, 3.0]);

        let mut s = Column::new(DataType::Str);
        assert!(s.extend_from(&i).is_err());
    }

    #[test]
    fn float_slice_fast_path() {
        let c: Column = vec![1.0f64, 2.0].into_iter().collect();
        assert_eq!(c.as_float_slice().unwrap().len(), 2);
        let i: Column = vec![1i64].into_iter().collect();
        assert!(i.as_float_slice().is_none());
        assert!(i.as_int_slice().is_some());
    }
}
