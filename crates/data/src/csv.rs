//! Dependency-free CSV emission (RFC-4180 quoting).
//!
//! The experiment harness dumps every regenerated figure/table as CSV so the
//! series can be diffed across runs and plotted externally. Only the writing
//! half of CSV is needed; scenario inputs are authored in the DSL, not CSV.

use std::fmt::Write as _;

use crate::error::DataResult;
use crate::table::Table;

/// Quote a single CSV field if it contains a comma, quote or newline.
fn quote_field(field: &str, out: &mut String) {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Render a table as CSV with a header row.
pub fn to_csv(table: &Table) -> DataResult<String> {
    let mut out = String::new();
    let n = table.schema().len();
    for (i, field) in table.schema().fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        quote_field(&field.name, &mut out);
    }
    out.push('\n');
    for row in table.rows() {
        for c in 0..n {
            if c > 0 {
                out.push(',');
            }
            let v = row.get_at(c)?;
            // NULL renders as an empty field, matching common CSV practice.
            if !v.is_null() {
                let text = v.to_string();
                quote_field(&text, &mut out);
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Render a named series of `(x, y)` points as two-column CSV.
///
/// Convenience used by the figure harnesses, which deal in plain float
/// series rather than tables.
pub fn series_to_csv(x_name: &str, y_name: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{x_name},{y_name}");
    for (x, y) in points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};
    use crate::table::TableBuilder;
    use crate::value::Value;

    #[test]
    fn basic_csv() {
        let schema = Schema::of(&[("week", DataType::Int), ("note", DataType::Str)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::Int(1), Value::Str("ok".into())])
            .unwrap();
        b.push_row(vec![Value::Int(2), Value::Null]).unwrap();
        let csv = to_csv(&b.finish()).unwrap();
        assert_eq!(csv, "week,note\n1,ok\n2,\n");
    }

    #[test]
    fn quoting_rules() {
        let schema = Schema::of(&[("s", DataType::Str)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::Str("a,b".into())]).unwrap();
        b.push_row(vec![Value::Str("he said \"hi\"".into())])
            .unwrap();
        b.push_row(vec![Value::Str("line1\nline2".into())]).unwrap();
        let csv = to_csv(&b.finish()).unwrap();
        let lines: Vec<&str> = csv.splitn(2, '\n').collect();
        assert_eq!(lines[0], "s");
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
        assert!(csv.contains("\"line1\nline2\""));
    }

    #[test]
    fn series_csv() {
        let csv = series_to_csv("week", "overload", &[(0.0, 0.01), (1.0, 0.02)]);
        assert_eq!(csv, "week,overload\n0,0.01\n1,0.02\n");
    }
}
