//! Column metadata: types, fields and schemas.

use std::fmt;

use crate::error::{DataError, DataResult};

/// The four storable scalar types.
///
/// `Null` is deliberately *not* a type: it is a value that inhabits every
/// type, mirroring SQL. Type inference in `prophet-sql` resolves untyped
/// expressions to one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
}

impl DataType {
    /// Whether arithmetic is defined on this type.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common supertype for arithmetic between two types, if any.
    /// `Int ⊔ Float = Float`; everything else must match exactly.
    pub fn unify_numeric(self, other: DataType) -> Option<DataType> {
        match (self, other) {
            (DataType::Int, DataType::Int) => Some(DataType::Int),
            (a, b) if a.is_numeric() && b.is_numeric() => Some(DataType::Float),
            (a, b) if a == b => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
        };
        f.write_str(name)
    }
}

/// A named, typed column slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-preserved; lookups are case-sensitive like TSQL
    /// under a binary collation).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> DataResult<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(DataError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Empty schema (zero columns).
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
            .expect("static schema literals must not contain duplicates")
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> DataResult<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_owned()))
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> DataResult<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// Field by position.
    pub fn field_at(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Append a field, preserving uniqueness.
    pub fn push(&mut self, field: Field) -> DataResult<()> {
        if self.fields.iter().any(|f| f.name == field.name) {
            return Err(DataError::DuplicateColumn(field.name));
        }
        self.fields.push(field);
        Ok(())
    }

    /// A new schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> DataResult<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            fields.push(self.field(name)?.clone());
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Float),
        ])
        .unwrap_err();
        assert_eq!(err, DataError::DuplicateColumn("a".into()));
    }

    #[test]
    fn index_and_lookup() {
        let s = Schema::of(&[("week", DataType::Int), ("demand", DataType::Float)]);
        assert_eq!(s.index_of("demand").unwrap(), 1);
        assert_eq!(s.field("week").unwrap().data_type, DataType::Int);
        assert!(s.index_of("capacity").is_err());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn projection_preserves_order_given() {
        let s = Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Str),
        ]);
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.fields()[0].name, "c");
        assert_eq!(p.fields()[1].name, "a");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn unify_numeric_rules() {
        assert_eq!(
            DataType::Int.unify_numeric(DataType::Int),
            Some(DataType::Int)
        );
        assert_eq!(
            DataType::Int.unify_numeric(DataType::Float),
            Some(DataType::Float)
        );
        assert_eq!(
            DataType::Str.unify_numeric(DataType::Str),
            Some(DataType::Str)
        );
        assert_eq!(DataType::Str.unify_numeric(DataType::Int), None);
    }

    #[test]
    fn push_checks_uniqueness() {
        let mut s = Schema::of(&[("a", DataType::Int)]);
        assert!(s.push(Field::new("b", DataType::Int)).is_ok());
        assert!(s.push(Field::new("a", DataType::Int)).is_err());
    }

    #[test]
    fn display_round_trip_shape() {
        let s = Schema::of(&[("week", DataType::Int), ("demand", DataType::Float)]);
        assert_eq!(s.to_string(), "(week INT, demand FLOAT)");
    }
}
