//! # prophet-data
//!
//! Columnar relational substrate for the Fuzzy Prophet reproduction.
//!
//! The original Fuzzy Prophet system ran on top of Microsoft SQL Server; every
//! component above the storage layer only ever manipulated *relations*. This
//! crate provides the minimal relational vocabulary the rest of the workspace
//! builds on:
//!
//! * [`Value`] — a dynamically typed scalar with SQL-style `NULL` semantics,
//! * [`Schema`]/[`Field`]/[`DataType`] — column metadata,
//! * [`Column`] — a typed, nullable, growable column,
//! * [`Table`] — a schema plus columns, with projection / filter / sort
//!   helpers and builders,
//! * [`csv`] — dependency-free CSV emission used by the experiment harness.
//!
//! Everything here is deterministic and allocation-conscious: the Monte Carlo
//! engine creates and destroys many small tables per simulated world, so
//! builders accept capacity hints and the row accessors avoid cloning where
//! possible.

pub mod column;
pub mod csv;
pub mod error;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use column::Column;
pub use error::{DataError, DataResult};
pub use row::Row;
pub use schema::{DataType, Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::Value;
