//! E5/E10 benches: fingerprint probing, correlation detection and basis
//! matching costs as the fingerprint length grows.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_fingerprint::{BasisStore, CorrelationDetector, Fingerprint};
use prophet_vg::dist::{Distribution, Normal};
use prophet_vg::rng::{SeedSequence, Xoshiro256StarStar};

/// A synthetic parameterized stochastic function: N(base, 15) under a seed.
fn probe(base: f64, len: usize) -> Fingerprint {
    let noise = Normal::new(0.0, 15.0).unwrap();
    let seq = SeedSequence::fingerprint_default(len);
    Fingerprint::from_values(
        seq.seeds()
            .iter()
            .map(|&s| {
                let mut rng = Xoshiro256StarStar::seed_from_u64(s);
                base + noise.sample(&mut rng)
            })
            .collect(),
    )
}

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10/detect");
    let detector = CorrelationDetector::default();
    for len in [8usize, 32, 128] {
        let a = probe(100.0, len);
        let b = probe(140.0, len); // exact offset under fixed seeds
        group.bench_function(format!("offset_len_{len}"), |bch| {
            bch.iter(|| detector.detect(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();
}

fn bench_basis_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5/basis_lookup");
    for entries in [16usize, 128, 1024] {
        let store: BasisStore<u64, Vec<f64>> =
            BasisStore::new(CorrelationDetector::default(), entries.max(1));
        for i in 0..entries {
            // distinct bases far enough apart that only one matches well
            store.insert(i as u64, probe(i as f64 * 1_000.0, 32), vec![0.0; 64]);
        }
        let query = probe(17.0 * 1_000.0 + 25.0, 32);
        group.bench_function(format!("{entries}_entries"), |b| {
            b.iter(|| store.find_correlated(std::hint::black_box(&query)))
        });
    }
    group.finish();
}

fn bench_probe_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10/probe_cost");
    for len in [8usize, 32, 128] {
        group.bench_function(format!("len_{len}"), |b| b.iter(|| probe(100.0, len)));
    }
    group.finish();
}

criterion_group!(benches, bench_detect, bench_basis_lookup, bench_probe_cost);
criterion_main!(benches);
