//! E9 benches: Markov-chain analysis cost and the simulation work that
//! region estimators avoid.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_fingerprint::analyze_chain;
use prophet_models::CapacityModel;
use prophet_vg::SeedManager;

fn step_matrix(worlds: usize, weeks: usize) -> Vec<Vec<f64>> {
    let model = CapacityModel::default();
    let seeds = SeedManager::new(0xE9);
    let trajectories: Vec<Vec<f64>> = (0..worlds)
        .map(|w| {
            let mut rng = seeds.rng_for(w as u64, "CapacityModel", 0);
            model.trajectory(weeks as i64, 16, 36, &mut rng)
        })
        .collect();
    (0..=weeks).map(|i| trajectories.iter().map(|t| t[i]).collect()).collect()
}

fn bench_chain_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9/analyze_chain");
    for worlds in [32usize, 128] {
        let steps = step_matrix(worlds, 52);
        group.bench_function(format!("{worlds}_worlds_52_steps"), |b| {
            b.iter(|| analyze_chain(std::hint::black_box(&steps), 0.98))
        });
    }
    group.finish();
}

/// Baseline the estimator competes with: simulating the full chain.
fn bench_full_chain_simulation(c: &mut Criterion) {
    let model = CapacityModel::default();
    let seeds = SeedManager::new(0xE9);
    let mut group = c.benchmark_group("e9/full_chain");
    group.bench_function("52_weeks_one_world", |b| {
        let mut world = 0u64;
        b.iter(|| {
            world = world.wrapping_add(1);
            let mut rng = seeds.rng_for(world, "CapacityModel", 0);
            model.trajectory(52, 16, 36, &mut rng)
        })
    });
    group.finish();
}

/// What the estimator costs instead: one affine application per region.
fn bench_region_estimation(c: &mut Criterion) {
    let steps = step_matrix(64, 52);
    let regions = analyze_chain(&steps, 0.98);
    let estimators: Vec<_> = regions.iter().map(|r| r.estimator()).collect();
    let mut group = c.benchmark_group("e9/region_estimate");
    group.bench_function("predict_all_regions", |b| {
        b.iter(|| {
            estimators
                .iter()
                .map(|e| e.predict(std::hint::black_box(10_000.0)))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chain_analysis, bench_full_chain_simulation, bench_region_estimation);
criterion_main!(benches);
