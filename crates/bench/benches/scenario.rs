//! E1 benches: scenario parsing and single-point evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fuzzy_prophet::prelude::*;
use fuzzy_prophet::scenario::FIGURE2_SQL;
use prophet_models::demo_registry;

fn bench_parse(c: &mut Criterion) {
    c.bench_function("e1/parse_figure2", |b| {
        b.iter(|| Scenario::parse(std::hint::black_box(FIGURE2_SQL)).unwrap())
    });
}

fn bench_single_point(c: &mut Criterion) {
    let scenario = Scenario::figure2().unwrap();
    let point = ParamPoint::from_pairs([
        ("current", 20i64),
        ("purchase1", 16),
        ("purchase2", 36),
        ("feature", 12),
    ]);
    let mut group = c.benchmark_group("e1/evaluate_point");
    for worlds in [50usize, 200] {
        group.bench_function(format!("{worlds}_worlds"), |b| {
            b.iter_batched(
                || {
                    Engine::new(
                        &scenario,
                        demo_registry(),
                        EngineConfig { worlds_per_point: worlds, ..EngineConfig::default() },
                    )
                    .unwrap()
                },
                |engine| engine.evaluate(std::hint::black_box(&point)).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_single_point);
criterion_main!(benches);
