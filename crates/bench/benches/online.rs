//! E2/E3/E8 benches: first render, slider adjustment, and progressive
//! estimation with and without a warm basis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prophet_bench::workloads::{cold_session, warm_session};

const WORLDS: usize = 60;

/// E2: cost of the first (cold) full-graph render.
///
/// The session is built in the setup but *not* refreshed there — note that
/// `set_param` refreshes internally, so sliders stay at their construction
/// defaults to keep the measured call genuinely cold.
fn bench_first_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/first_render");
    group.sample_size(10);
    group.bench_function(format!("{WORLDS}_worlds_53_weeks"), |b| {
        b.iter_batched(
            || cold_session(WORLDS),
            |mut s| {
                let report = s.refresh().unwrap();
                assert!(report.weeks_cached == 0, "render must be cold");
                report
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// E3: cost of a slider adjustment on a warm session (the paper's "only
/// portions of the graph are re-rendered").
fn bench_adjustment(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3/adjustment");
    group.sample_size(10);
    group.bench_function("purchase2_36_to_40", |b| {
        b.iter_batched(
            || warm_session(WORLDS),
            |mut s| s.set_param("purchase2", 40).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// E8: progressive estimate to a fixed accuracy, cold vs warm basis.
fn bench_first_accurate_guess(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8/first_accurate_guess");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter_batched(
            || {
                let mut s = cold_session(200);
                s.set_param("purchase1", 16).unwrap();
                s.set_param("purchase2", 36).unwrap();
                s.engine().clear_basis();
                s
            },
            |mut s| s.progressive_expect("overload", 20, 0.04, 20).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("warm", |b| {
        b.iter_batched(
            || warm_session(200),
            |mut s| s.progressive_expect("overload", 20, 0.04, 20).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_first_render, bench_adjustment, bench_first_accurate_guess);
criterion_main!(benches);
