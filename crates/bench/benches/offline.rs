//! E6/E7 benches: the offline OPTIMIZE sweep, with fingerprints on vs off.
//!
//! The on/off pair is the paper's headline claim: fingerprint reuse must
//! make the full-grid sweep markedly cheaper without changing the answer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fuzzy_prophet::prelude::*;
use prophet_models::demo_registry;

/// Very coarse grid so a full sweep fits in a bench iteration.
const SWEEP: &str = "\
DECLARE PARAMETER @current AS RANGE 0 TO 52 STEP BY 4;
DECLARE PARAMETER @purchase1 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @purchase2 AS RANGE 0 TO 48 STEP BY 16;
DECLARE PARAMETER @feature AS SET (12,36);
SELECT DemandModel(@current, @feature) AS demand,
       CapacityModel(@current, @purchase1, @purchase2) AS capacity,
       CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
INTO results;
OPTIMIZE SELECT @feature, @purchase1, @purchase2
FROM results
WHERE MAX(EXPECT overload) < 0.05
GROUP BY feature, purchase1, purchase2
FOR MAX @purchase1, MAX @purchase2";

const WORLDS: usize = 40;

fn optimizer(fingerprints: bool) -> OfflineOptimizer {
    let engine = Engine::new(
        &Scenario::parse(SWEEP).unwrap(),
        demo_registry(),
        EngineConfig {
            worlds_per_point: WORLDS,
            fingerprints_enabled: fingerprints,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    OfflineOptimizer::open(engine).unwrap()
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7/offline_sweep");
    group.sample_size(10);
    group.bench_function("fingerprints_on", |b| {
        b.iter_batched(|| optimizer(true), |o| o.run().unwrap(), BatchSize::LargeInput)
    });
    group.bench_function("fingerprints_off", |b| {
        b.iter_batched(|| optimizer(false), |o| o.run().unwrap(), BatchSize::LargeInput)
    });
    group.finish();
}

/// E6: the answer itself on a warm engine (sweep amortized) — measures the
/// ranking/aggregation layer alone.
fn bench_rerun_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6/warm_rerun");
    group.sample_size(10);
    let opt = optimizer(true);
    opt.run().unwrap(); // warm the basis
    group.bench_function("fully_cached_sweep", |b| b.iter(|| opt.run().unwrap()));
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_rerun_warm);
criterion_main!(benches);
