//! # prophet-bench
//!
//! Experiment harness regenerating every figure and quantitative claim of
//! the paper's evaluation (§3, Figures 2–4), plus the ablations DESIGN.md
//! calls out. Each experiment is a library function returning a printable
//! report so that
//!
//! * `cargo run --release -p prophet-bench --bin experiments [-- eN]`
//!   regenerates any or all experiment tables, and
//! * the Criterion benches in `benches/` time the same workloads.
//!
//! Experiment index (see DESIGN.md for the full mapping):
//!
//! | id  | paper artifact |
//! |-----|----------------|
//! | E1  | Figure 2 scenario parses & runs end-to-end |
//! | E2  | Figure 3 online graph series |
//! | E3  | §3.2 second adjustment re-renders only changed portions |
//! | E4  | §3.2 feature-date change still re-maps |
//! | E5  | Figure 4 fingerprint-mapping map over (purchase1, purchase2) |
//! | E6  | §3.3 offline optimization (1% and 5% thresholds) |
//! | E7  | §1/§2 fingerprints expedite offline exploration |
//! | E8  | §1 basis reuse lowers time-to-first-accurate-guess |
//! | E9  | §2 Markovian-region estimators skip chain segments |
//! | E10 | ablation: fingerprint length vs detection quality |

pub mod experiments;
pub mod workloads;
