//! The ten experiments. Each function runs one experiment and returns a
//! human-readable report (tables the paper's figures correspond to).
//! `EXPERIMENTS.md` records a reference run of these outputs.

use std::fmt::Write as _;
use std::time::Instant;

use fuzzy_prophet::prelude::*;
use fuzzy_prophet::render::ascii_chart;
use prophet_fingerprint::{analyze_chain, CorrelationDetector, Fingerprint};
use prophet_models::{demo_registry, CapacityModel};
use prophet_vg::rng::SeedSequence;
use prophet_vg::SeedManager;

use crate::workloads::{
    demo_optimizer, figure2_coarse, standard_config, warm_session, DEFAULT_FEATURE,
    DEFAULT_PURCHASE1, DEFAULT_PURCHASE2,
};

/// E1 — the Figure-2 scenario parses and runs end-to-end.
pub fn e1_figure2_end_to_end() -> String {
    let mut out = String::from("E1: Figure 2 scenario — parse & run end-to-end\n");
    let t0 = Instant::now();
    let scenario = Scenario::figure2().expect("Figure 2 parses");
    let parse_time = t0.elapsed();
    let script = scenario.script();
    let _ = writeln!(
        out,
        "  parsed in {parse_time:?}: {} parameters, {} output columns, graph={}, optimize={}",
        script.params.len(),
        script.output_columns().len(),
        script.graph.is_some(),
        script.optimize.is_some()
    );
    let _ = writeln!(
        out,
        "  parameter space: {} points",
        scenario.parameter_space_size()
    );

    let engine =
        Engine::new(&scenario, demo_registry(), standard_config(400)).expect("engine construction");
    let point = ParamPoint::from_pairs([
        ("current", 20i64),
        ("purchase1", DEFAULT_PURCHASE1),
        ("purchase2", DEFAULT_PURCHASE2),
        ("feature", DEFAULT_FEATURE),
    ]);
    let t1 = Instant::now();
    let (samples, outcome) = engine.evaluate(&point).expect("evaluation");
    let eval_time = t1.elapsed();
    let _ = writeln!(
        out,
        "  evaluated {point} ({outcome:?}) in {eval_time:?}: E[demand]={:.0}  E[capacity]={:.0}  E[overload]={:.3}",
        samples.expect("demand").unwrap(),
        samples.expect("capacity").unwrap(),
        samples.expect("overload").unwrap(),
    );
    out
}

/// E2 — Figure 3: the online graph series (per-week E\[overload\],
/// E\[capacity\], σ\[demand\]).
pub fn e2_online_graph(worlds: usize) -> String {
    let mut out = String::from("E2: Figure 3 — online graph series\n");
    let t0 = Instant::now();
    let session = warm_session(worlds);
    let _ = writeln!(
        out,
        "  rendered in {:?} ({} worlds/point)\n",
        t0.elapsed(),
        worlds
    );

    let series: Vec<_> = session.graph().iter().collect();
    out.push_str(&ascii_chart(&series, 100, 16));
    out.push('\n');

    let overload = session.series("overload").unwrap();
    let capacity = session.series("capacity").unwrap();
    let demand_sd = session.series("demand").unwrap();
    let _ = writeln!(out, "  week  E[overload]  E[capacity]  sd[demand]");
    for week in (0..=52).step_by(4) {
        let _ = writeln!(
            out,
            "  {week:>4}  {:>11.3}  {:>11.0}  {:>10.0}",
            overload.at(week).map(|p| p.y).unwrap_or(f64::NAN),
            capacity.at(week).map(|p| p.y).unwrap_or(f64::NAN),
            demand_sd.at(week).map(|p| p.y).unwrap_or(f64::NAN),
        );
    }
    out
}

/// E3 — §3.2: a second slider adjustment re-renders only changed portions.
pub fn e3_adjustment_rerender(worlds: usize) -> String {
    let mut out = String::from("E3: slider adjustment re-renders only changed portions (§3.2)\n");
    let mut session = warm_session(worlds);
    let first_metrics = session.engine().metrics();
    let _ = writeln!(
        out,
        "  first render:   cold start — {} points simulated, {} intra-sweep mapped \
         ({} worlds simulated)",
        first_metrics.points_simulated, first_metrics.points_mapped, first_metrics.worlds_simulated
    );
    for (from, to) in [(DEFAULT_PURCHASE2, 40i64), (40, 44), (44, 36)] {
        let report = session.set_param("purchase2", to).expect("valid slider");
        let _ = writeln!(
            out,
            "  @purchase2 {from:>2} → {to:<2}: {:>2} simulated / {:>2} mapped / {:>2} cached of {} weeks \
             (re-render fraction {:.2}) in {:?}",
            report.weeks_simulated,
            report.weeks_mapped,
            report.weeks_cached,
            report.weeks_total,
            report.rerender_fraction(),
            report.wall,
        );
    }
    out
}

/// E4 — §3.2: changing the feature release date still re-maps most of the
/// graph "despite the slope of the usage graph changing".
pub fn e4_feature_change(worlds: usize) -> String {
    let mut out = String::from("E4: feature-date change re-maps despite slope change (§3.2)\n");
    let mut session = warm_session(worlds);
    for (from, to) in [(12i64, 36i64), (36, 44), (44, 12)] {
        let report = session.set_param("feature", to).expect("valid slider");
        let _ = writeln!(
            out,
            "  @feature {from:>2} → {to:<2}: {:>2} simulated / {:>2} mapped / {:>2} cached of {} weeks \
             (re-render fraction {:.2})",
            report.weeks_simulated,
            report.weeks_mapped,
            report.weeks_cached,
            report.weeks_total,
            report.rerender_fraction(),
        );
    }
    out.push_str(
        "  note: only the weeks between the two release dates change distribution; the\n\
         \x20 engine re-simulates those and re-maps/caches the rest.\n",
    );
    out
}

/// E5 — Figure 4: 2D slice of fingerprint mappings for the Capacity model
/// over (purchase1, purchase2).
pub fn e5_exploration_map(worlds: usize) -> String {
    let mut out = String::from("E5: Figure 4 — fingerprint mappings over (purchase1, purchase2)\n");
    let scenario = figure2_coarse(0.05);
    let p1 = scenario.script().param("purchase1").unwrap().clone();
    let p2 = scenario.script().param("purchase2").unwrap().clone();
    let optimizer = demo_optimizer(scenario, standard_config(worlds));
    let mut map = ExplorationMap::new(&p1, &p2);
    let t0 = Instant::now();
    optimizer
        .run_with_observer(|_, full, outcome| map.record(full, outcome))
        .expect("sweep");
    let _ = writeln!(out, "  sweep completed in {:?}\n", t0.elapsed());
    out.push_str(&map.render_ascii());
    let (computed, mapped, cached, pending) = map.tally();
    let _ = writeln!(
        out,
        "\n  cells: {computed} computed, {mapped} mapped, {cached} cached, {pending} pending; \
         reuse fraction {:.2}; {} mapping edges",
        map.reuse_fraction(),
        map.edges().len()
    );
    out
}

/// E6 — §3.3: the OPTIMIZE answer at the SQL text's 1% threshold and the
/// prose's 5% threshold.
pub fn e6_offline_optimization(worlds: usize) -> String {
    let mut out = String::from("E6: offline optimization — latest safe purchase plan (§3.3)\n");
    for threshold in [0.01, 0.05] {
        let optimizer = demo_optimizer(figure2_coarse(threshold), standard_config(worlds));
        let t0 = Instant::now();
        let report = optimizer.run().expect("sweep");
        let _ = writeln!(
            out,
            "  max E[overload] < {threshold:<4}: {} groups, {} feasible, wall {:?}",
            report.groups_total,
            report.feasible().count(),
            t0.elapsed()
        );
        match &report.best {
            Some(best) => {
                let _ = writeln!(
                    out,
                    "    best: purchase1=week {:>2}, purchase2=week {:>2}, feature=week {:>2} \
                     (worst-week E[overload] {:.4})",
                    best.point.get("purchase1").unwrap(),
                    best.point.get("purchase2").unwrap(),
                    best.point.get("feature").unwrap(),
                    best.constraint_values[0]
                );
            }
            None => {
                let _ = writeln!(out, "    best: none (no feasible plan)");
            }
        }
    }
    out
}

/// E7 — fingerprints expedite offline exploration: same sweep with the
/// technique on and off.
pub fn e7_fingerprint_speedup(worlds: usize) -> String {
    let mut out = String::from("E7: offline sweep with fingerprints on vs off\n");
    let mut results = Vec::new();
    for enabled in [true, false] {
        let cfg = EngineConfig {
            worlds_per_point: worlds,
            fingerprints_enabled: enabled,
            ..EngineConfig::default()
        };
        let optimizer = demo_optimizer(figure2_coarse(0.05), cfg);
        let t0 = Instant::now();
        let report = optimizer.run().expect("sweep");
        let wall = t0.elapsed();
        let _ = writeln!(
            out,
            "  fingerprints {}: wall {wall:?}; {}",
            if enabled { "ON " } else { "OFF" },
            report.metrics
        );
        results.push((report, wall));
    }
    let (with_fp, with_wall) = &results[0];
    let (without_fp, without_wall) = &results[1];
    let _ = writeln!(
        out,
        "  same answer: {}",
        with_fp.best.as_ref().map(|b| &b.point) == without_fp.best.as_ref().map(|b| &b.point)
    );
    let _ = writeln!(
        out,
        "  worlds simulated: {} vs {} ({:.1}x fewer)",
        with_fp.metrics.worlds_simulated,
        without_fp.metrics.worlds_simulated,
        without_fp.metrics.worlds_simulated as f64 / with_fp.metrics.worlds_simulated.max(1) as f64
    );
    let _ = writeln!(
        out,
        "  wall speedup: {:.2}x",
        without_wall.as_secs_f64() / with_wall.as_secs_f64().max(1e-9)
    );
    out
}

/// E8 — basis reuse lowers time-to-first-accurate-guess.
pub fn e8_first_accurate_guess(worlds: usize) -> String {
    let mut out = String::from("E8: time to first accurate guess — cold vs warm basis\n");
    let epsilon = 0.04;
    let _ = writeln!(
        out,
        "  convergence: 95% CI half-width <= {epsilon} on E[overload]\n"
    );
    let _ = writeln!(out, "  week  cold worlds  warm worlds  cold E  warm E");
    let mut warm = warm_session(worlds);
    for week in [10i64, 15, 25, 40, 52] {
        let mut cold = crate::workloads::cold_session(worlds);
        cold.set_param("purchase1", DEFAULT_PURCHASE1).unwrap();
        cold.set_param("purchase2", DEFAULT_PURCHASE2).unwrap();
        cold.set_param("feature", DEFAULT_FEATURE).unwrap();
        // Cold estimate: a fresh engine with an empty basis per week probe.
        cold.engine().clear_basis();
        let cold_est = cold
            .progressive_expect("overload", week, epsilon, 20)
            .unwrap();
        let warm_est = warm
            .progressive_expect("overload", week, epsilon, 20)
            .unwrap();
        let _ = writeln!(
            out,
            "  {week:>4}  {:>11}  {:>11}  {:>6.3}  {:>6.3}{}",
            cold_est.worlds_used,
            warm_est.worlds_used,
            cold_est.estimate,
            warm_est.estimate,
            if warm_est.used_basis {
                "  (basis hit)"
            } else {
                ""
            }
        );
    }
    out
}

/// E9 — Markovian-region estimators let the simulator skip chain segments.
pub fn e9_markov_regions() -> String {
    let mut out = String::from("E9: Markov-region estimators on the capacity chain (§2)\n");
    let model = CapacityModel::default();
    let seeds = SeedManager::new(0xE9);
    // Step fingerprints: capacity at each week across fixed worlds.
    let n_worlds = 64usize;
    let weeks = 52usize;
    let trajectories: Vec<Vec<f64>> = (0..n_worlds)
        .map(|w| {
            let mut rng = seeds.rng_for(w as u64, "CapacityModel", 0);
            model.trajectory(weeks as i64, 16, 36, &mut rng)
        })
        .collect();
    // steps[i][w] = world w's capacity at week i
    let steps: Vec<Vec<f64>> = (0..=weeks)
        .map(|i| trajectories.iter().map(|t| t[i]).collect())
        .collect();

    let regions = analyze_chain(&steps, 0.98);
    let total_skippable: usize = regions.iter().map(|r| r.steps_skipped()).sum();
    let _ = writeln!(
        out,
        "  chain: {} steps × {} worlds; {} affine regions found, {} steps skippable",
        weeks + 1,
        n_worlds,
        regions.len(),
        total_skippable
    );
    let _ = writeln!(
        out,
        "\n  region  span          skipped  est error (worlds RMS)"
    );
    for region in &regions {
        let est = region.estimator();
        // prediction error of the region estimator against the actual end
        let rms = {
            let mut acc = 0.0;
            for t in &trajectories {
                let pred = est.predict(t[region.start]);
                let actual = t[region.end];
                acc += (pred - actual).powi(2);
            }
            (acc / n_worlds as f64).sqrt()
        };
        let _ = writeln!(
            out,
            "  {:>6}  week {:>2}..{:<3}  {:>7}  {:>8.1} cores",
            format!("[{},{}]", region.start, region.end),
            region.start,
            region.end,
            region.steps_skipped(),
            rms
        );
    }
    let _ = writeln!(
        out,
        "\n  deployments (week ~{} and ~{}) break the chain into regions — exactly the\n\
         \x20 'discrete events occurring at random points in time' the paper highlights.",
        18, 38
    );
    out
}

/// E10 — ablation: fingerprint length vs mapping detection quality.
///
/// Ground truth pairs from the demo scenario: positives are parameter
/// changes that provably leave outputs identical or offset (feature moves
/// that stay on one side of the week, purchase moves across the week);
/// negatives are demand distributions across the release boundary paired
/// with far-apart weeks.
pub fn e10_fingerprint_length_ablation() -> String {
    let mut out = String::from("E10: fingerprint length vs detection quality\n");
    let registry = demo_registry();
    let seeds = SeedManager::new(EngineConfig::default().root_seed);
    let detector = CorrelationDetector::default();

    // Probe demand & capacity outputs at a point under the canonical seeds.
    let probe =
        |len: usize, current: i64, p1: i64, p2: i64, feature: i64| -> (Fingerprint, Fingerprint) {
            let seq = SeedSequence::fingerprint_default(len);
            let mut demand = Vec::with_capacity(len);
            let mut capacity = Vec::with_capacity(len);
            for &world in seq.seeds() {
                let mut rng_d = seeds.rng_for(world, "DemandModel", 0);
                let d = registry
                    .invoke(
                        "DemandModel",
                        &[
                            prophet_data::Value::Int(current),
                            prophet_data::Value::Int(feature),
                        ],
                        &mut rng_d,
                    )
                    .unwrap()
                    .cell(0, "demand")
                    .unwrap()
                    .as_f64()
                    .unwrap();
                let mut rng_c = seeds.rng_for(world, "CapacityModel", 1);
                let c = registry
                    .invoke(
                        "CapacityModel",
                        &[
                            prophet_data::Value::Int(current),
                            prophet_data::Value::Int(p1),
                            prophet_data::Value::Int(p2),
                        ],
                        &mut rng_c,
                    )
                    .unwrap()
                    .cell(0, "capacity")
                    .unwrap()
                    .as_f64()
                    .unwrap();
                demand.push(d);
                capacity.push(c);
            }
            (
                Fingerprint::from_values(demand),
                Fingerprint::from_values(capacity),
            )
        };

    let _ = writeln!(out, "  len  true-pos rate  false-pos rate  probes/point");
    for len in [4usize, 8, 16, 32, 64, 128] {
        let mut true_pos = 0;
        let mut pos_total = 0;
        let mut false_pos = 0;
        let mut neg_total = 0;
        // Positives: capacity under purchase shifts (exact offsets) and
        // demand under feature moves on the same side of the week.
        for (a, b) in [
            ((10, 4, 36, 12), (10, 16, 36, 12)), // purchase crosses week → offset
            ((5, 16, 36, 12), (5, 16, 36, 44)),  // feature far future → identity
            ((30, 4, 8, 12), (30, 4, 12, 12)),   // both purchases deployed → identity
            ((20, 4, 36, 12), (20, 8, 36, 12)),  // deployed purchase shifted → identity
        ] {
            let (da, ca) = probe(len, a.0, a.1, a.2, a.3);
            let (db, cb) = probe(len, b.0, b.1, b.2, b.3);
            pos_total += 2;
            if detector.detect(&da, &db).is_some() {
                true_pos += 1;
            }
            if detector.detect(&ca, &cb).is_some() {
                true_pos += 1;
            }
        }
        // Negatives: demand across the release boundary (independent
        // gaussian added) and far-apart weeks of different points.
        for (a, b) in [
            ((20, 4, 8, 12), (20, 4, 8, 36)),  // across release boundary
            ((2, 0, 4, 12), (50, 40, 44, 44)), // unrelated corners
        ] {
            let (da, _) = probe(len, a.0, a.1, a.2, a.3);
            let (db, _) = probe(len, b.0, b.1, b.2, b.3);
            neg_total += 1;
            if detector.detect(&da, &db).is_some() {
                false_pos += 1;
            }
        }
        let _ = writeln!(
            out,
            "  {len:>3}  {:>13.2}  {:>14.2}  {:>12}",
            true_pos as f64 / pos_total as f64,
            false_pos as f64 / neg_total as f64,
            len
        );
    }
    out.push_str(
        "  shape: detection saturates by length ~16-32 while probe cost grows linearly —\n\
         \x20 motivating the default length of 32.\n",
    );
    out
}

/// Run every experiment (worlds parameter scales the Monte Carlo effort).
pub fn run_all(worlds: usize) -> String {
    let mut out = String::new();
    let parts: Vec<String> = vec![
        e1_figure2_end_to_end(),
        e2_online_graph(worlds),
        e3_adjustment_rerender(worlds),
        e4_feature_change(worlds),
        e5_exploration_map(worlds.min(150)),
        e6_offline_optimization(worlds.min(150)),
        e7_fingerprint_speedup(worlds.min(100)),
        e8_first_accurate_guess(worlds),
        e9_markov_regions(),
        e10_fingerprint_length_ablation(),
    ];
    for p in parts {
        out.push_str(&p);
        out.push_str(
            "\n----------------------------------------------------------------------\n\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests: every experiment runs on tiny budgets and produces the
    // key lines its report promises. The full-budget reference run lives in
    // EXPERIMENTS.md.

    #[test]
    fn e1_reports_shape() {
        let r = e1_figure2_end_to_end();
        assert!(r.contains("4 parameters"));
        assert!(r.contains("31164 points") || r.contains("parameter space"));
    }

    #[test]
    fn e2_emits_all_weeks() {
        let r = e2_online_graph(8);
        assert!(r.contains("week  E[overload]"));
        let table_rows = r
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .count();
        assert!(
            table_rows >= 14,
            "expected a row per 4-week step, got {table_rows}:\n{r}"
        );
    }

    #[test]
    fn e3_shows_partial_rerender() {
        let r = e3_adjustment_rerender(8);
        assert!(r.contains("re-render fraction"));
    }

    #[test]
    fn e5_map_has_no_pending_cells() {
        let r = e5_exploration_map(8);
        assert!(r.contains("0 pending"), "{r}");
    }

    #[test]
    fn e9_finds_multiple_regions() {
        let r = e9_markov_regions();
        assert!(r.contains("regions found"));
    }

    #[test]
    fn e10_reports_all_lengths() {
        let r = e10_fingerprint_length_ablation();
        for len in ["  4 ", "  8 ", " 16 ", " 32 ", " 64 ", "128 "] {
            assert!(r.contains(len.trim_end()), "missing {len}: {r}");
        }
    }
}
