//! Experiment runner: regenerates the paper's figures and claims.
//!
//! ```sh
//! cargo run --release -p prophet-bench --bin experiments            # all
//! cargo run --release -p prophet-bench --bin experiments -- e5 e7  # subset
//! cargo run --release -p prophet-bench --bin experiments -- --worlds 200 e2
//! ```

use prophet_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut worlds = 400usize;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--worlds" => {
                worlds = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| die("--worlds needs a positive integer"));
            }
            e if e.starts_with('e') || e.starts_with('E') => selected.push(e.to_lowercase()),
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    if selected.is_empty() {
        print!("{}", experiments::run_all(worlds));
        return;
    }
    for id in selected {
        let report = match id.as_str() {
            "e1" => experiments::e1_figure2_end_to_end(),
            "e2" => experiments::e2_online_graph(worlds),
            "e3" => experiments::e3_adjustment_rerender(worlds),
            "e4" => experiments::e4_feature_change(worlds),
            "e5" => experiments::e5_exploration_map(worlds.min(150)),
            "e6" => experiments::e6_offline_optimization(worlds.min(150)),
            "e7" => experiments::e7_fingerprint_speedup(worlds.min(100)),
            "e8" => experiments::e8_first_accurate_guess(worlds),
            "e9" => experiments::e9_markov_regions(),
            "e10" => experiments::e10_fingerprint_length_ablation(),
            other => die(&format!("unknown experiment `{other}` (e1..e10)")),
        };
        println!("{report}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: experiments [--worlds N] [e1 e2 … e10]");
    std::process::exit(2);
}
