//! Bench smoke: run the experiment harness's offline sweep on a small
//! workload and emit `BENCH_sweep.json` so the perf trajectory of the
//! batched evaluation executor is recorded per commit.
//!
//! ```sh
//! cargo run --release -p prophet-bench --bin sweep_smoke
//! cargo run --release -p prophet-bench --bin sweep_smoke -- --worlds 64 --threads 4 --out BENCH_sweep.json
//! cargo run --release -p prophet-bench --bin sweep_smoke -- --trace-out trace.json  # chrome://tracing
//! ```
//!
//! The JSON reports sweep throughput (points/sec) and the executor's
//! probe-vs-simulation wall-clock split (`probe_nanos` / `sim_nanos`) for
//! the **boxed vector, match-indexed** configuration at the top level,
//! plus three comparison sweeps of the same workload: the **typed
//! columnar** tier (`columnar.*` fields — the columnar-vs-boxed probe
//! timing split, with `columnar_kernels` / `column_fallbacks` recording
//! how much of the walk stayed on typed kernels; the bundled workloads
//! must report zero fallbacks), one with the fingerprint summary index
//! disabled (`unindexed.*` fields — the indexed-vs-exhaustive match scan
//! split, with `candidates_scanned` / `candidates_pruned` /
//! `match_scan_nanos` recording the prune rate) and one through the
//! **scalar** execution tier (`scalar.*` fields — the scalar-vs-vector
//! probe timing split). A fifth, `concurrent{…}`, section runs the same
//! sweep twice as concurrent Low/High-priority jobs on one shared
//! scheduler pool (two scenario slots, two stores) and records the
//! combined throughput plus each job's wall clock — the interleaving cost
//! of the asynchronous job API — and the `scaling` ratio of that combined
//! throughput over the blocking tier's, which this binary asserts is at
//! least 1.0 (the sharded store's contention headroom). A sixth,
//! `cold_start{…}`, section warms a service, persists its basis with
//! `save_basis`, and times the same sweep on a fresh service restored
//! via `load_basis` — `points_simulated` must be zero, so the row is the
//! pure serve-from-snapshot trajectory. The concurrent run keeps its flight
//! recorder armed: a `telemetry{…}` section reports its chunk-service
//! and per-priority queue-wait percentiles, the queue-depth watermark
//! (`docs/OBSERVABILITY.md`), and a `store{…}` block with the coherent
//! hit/miss/eviction/entry counters summed over both slots' sharded
//! stores, and `--trace-out PATH`
//! additionally dumps that run's event ring as a `chrome://tracing` /
//! Perfetto-loadable JSON file. The single-job sweeps run on the
//! blocking tier (no tracer), so their recorded throughput is untouched
//! by tracing. Every sweep configuration is run three
//! times and the median run (by wall clock) is reported, so single-shot
//! scheduler noise does not land in the recorded trajectory. All sweeps
//! must agree on the sweep answer, which this binary asserts (and CI
//! therefore asserts per push). `worlds_per_walk` is the observed walk
//! amortization: logical probe evaluations per block walk (the
//! fingerprint length when a block tier is on — the scalar tier walks
//! once *per seed* instead).

use std::time::Instant;

use fuzzy_prophet::prelude::*;
use prophet_bench::workloads::{demo_optimizer, figure2_coarse};

struct SweepRun {
    metrics: EngineMetrics,
    wall_nanos: u128,
    points_per_sec: f64,
    groups: usize,
    best: String,
}

/// How many times each sweep configuration runs; the median run (by wall
/// clock) is the one reported, so one noisy scheduler quantum cannot
/// distort the recorded perf trajectory.
const REPEATS: usize = 3;

fn run_sweep_once(worlds: usize, threads: usize, tier: ExecTier, match_index: bool) -> SweepRun {
    let config = EngineConfig {
        worlds_per_point: worlds,
        threads,
        tier,
        match_index,
        ..EngineConfig::default()
    };
    let optimizer = demo_optimizer(figure2_coarse(0.05), config);
    let groups = optimizer.groups_total();
    let t0 = Instant::now();
    let report = optimizer.run().expect("sweep must complete");
    let wall = t0.elapsed();
    let points = report.metrics.points_total();
    SweepRun {
        metrics: report.metrics,
        wall_nanos: wall.as_nanos(),
        points_per_sec: points as f64 / wall.as_secs_f64().max(1e-9),
        groups,
        best: best_str(&report),
    }
}

/// Run every sweep configuration [`REPEATS`] times — repeats *interleaved*
/// across configurations (config₀, config₁, …, config₀, config₁, …) so a
/// slow host phase lands on all tiers alike instead of skewing whichever
/// configuration happened to run during it — and return each
/// configuration's median run by wall clock. The work counters are
/// deterministic across repeats (asserted via the sweep answer below);
/// only the timings vary.
fn run_sweeps(worlds: usize, threads: usize, configs: &[(ExecTier, bool)]) -> Vec<SweepRun> {
    let mut rounds: Vec<Vec<SweepRun>> = configs.iter().map(|_| Vec::new()).collect();
    for _ in 0..REPEATS {
        for (i, &(tier, match_index)) in configs.iter().enumerate() {
            rounds[i].push(run_sweep_once(worlds, threads, tier, match_index));
        }
    }
    rounds
        .into_iter()
        .map(|mut runs| {
            runs.sort_by_key(|r| r.wall_nanos);
            runs.swap_remove(REPEATS / 2)
        })
        .collect()
}

struct ConcurrentRun {
    /// Total wall clock until both jobs completed.
    wall_nanos: u128,
    points_per_sec: f64,
    /// Wall clock until the high-priority job's answer returned — the
    /// interactivity number (how long a watcher of the High job waited
    /// while the Low sweep ran alongside).
    hi_wall_nanos: u128,
    points_total: u64,
    hi_best: String,
    lo_best: String,
    /// Quiesced post-run snapshot of the pool's flight recorder.
    telemetry: TelemetrySnapshot,
    /// Store counters summed across the run's two scenario slots, read
    /// through the coherent one-lock snapshot (`basis_stats_all`).
    store: StoreStatsSnapshot,
    /// The run's full event ring, for `--trace-out`.
    trace_events: Vec<TraceEvent>,
}

/// The concurrent-jobs split: the same coarse sweep submitted twice — two
/// scenario slots, two stores — as Low- and High-priority jobs on one
/// shared scheduler pool, so the jobs' chunks interleave by priority
/// instead of queueing whole-sweep-at-a-time. Median of [`REPEATS`] runs,
/// like the single-job sweeps.
fn run_concurrent(worlds: usize, threads: usize) -> ConcurrentRun {
    let mut runs: Vec<ConcurrentRun> = (0..REPEATS)
        .map(|_| run_concurrent_once(worlds, threads))
        .collect();
    runs.sort_by_key(|r| r.wall_nanos);
    runs.swap_remove(REPEATS / 2)
}

fn run_concurrent_once(worlds: usize, threads: usize) -> ConcurrentRun {
    let config = EngineConfig {
        worlds_per_point: worlds,
        threads,
        ..EngineConfig::default()
    };
    let prophet = Prophet::builder()
        .scenario("hi", figure2_coarse(0.05))
        .scenario("lo", figure2_coarse(0.05))
        .registry(prophet_models::demo_registry())
        .config(config)
        .build()
        .expect("service construction");
    let t0 = Instant::now();
    let lo = prophet
        .submit(JobSpec::sweep("lo").with_priority(Priority::Low))
        .expect("submit lo");
    let hi = prophet
        .submit(JobSpec::sweep("hi").with_priority(Priority::High))
        .expect("submit hi");
    let hi_report = hi
        .wait()
        .and_then(JobOutput::into_sweep)
        .expect("hi sweep completes");
    let hi_wall = t0.elapsed();
    let lo_report = lo
        .wait()
        .and_then(JobOutput::into_sweep)
        .expect("lo sweep completes");
    let wall = t0.elapsed();
    // Quiesce before snapshotting: `wait()` returns on the Final event,
    // just before the driver's finish bookkeeping lands in the ring.
    prophet.scheduler().wait_idle();
    let points_total = hi_report.metrics.points_total() + lo_report.metrics.points_total();
    let store =
        prophet
            .basis_stats_all()
            .into_iter()
            .fold(StoreStatsSnapshot::default(), |acc, (_, s)| {
                StoreStatsSnapshot {
                    hits: acc.hits + s.hits,
                    misses: acc.misses + s.misses,
                    inflight_waits: acc.inflight_waits + s.inflight_waits,
                    evictions: acc.evictions + s.evictions,
                    entries: acc.entries + s.entries,
                }
            });
    ConcurrentRun {
        wall_nanos: wall.as_nanos(),
        points_per_sec: points_total as f64 / wall.as_secs_f64().max(1e-9),
        hi_wall_nanos: hi_wall.as_nanos(),
        points_total,
        hi_best: best_str(&hi_report),
        lo_best: best_str(&lo_report),
        telemetry: prophet.telemetry(),
        store,
        trace_events: prophet.trace_events(),
    }
}

struct ColdStartRun {
    /// Entries restored from the snapshot file.
    entries: usize,
    /// Snapshot file size on disk.
    snapshot_bytes: u64,
    wall_nanos: u128,
    points_per_sec: f64,
    points_simulated: u64,
    points_cached: u64,
    best: String,
}

fn snapshot_service(worlds: usize, threads: usize) -> Prophet {
    Prophet::builder()
        .scenario("figure2", figure2_coarse(0.05))
        .registry(prophet_models::demo_registry())
        .config(EngineConfig {
            worlds_per_point: worlds,
            threads,
            ..EngineConfig::default()
        })
        .build()
        .expect("service construction")
}

/// The cold-start-from-snapshot split: warm one service with a full
/// sweep, persist its basis via `save_basis`, then time the same sweep
/// on fresh services that `load_basis` the file — every point must come
/// back from the restored store (`points_simulated == 0`), so the row
/// records pure serve-from-basis throughput. Median of [`REPEATS`]
/// restored sweeps; the warm-up and save run once.
fn run_cold_start(worlds: usize, threads: usize) -> ColdStartRun {
    let path = std::env::temp_dir().join("fuzzy_prophet_bench_basis.fpbs");
    let warm = snapshot_service(worlds, threads);
    warm.submit(JobSpec::sweep("figure2"))
        .expect("submit warm sweep")
        .wait()
        .expect("warm sweep completes");
    let entries = warm.save_basis("figure2", &path).expect("save basis");
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let mut runs: Vec<ColdStartRun> = (0..REPEATS)
        .map(|_| {
            let cold = snapshot_service(worlds, threads);
            let loaded = cold.load_basis("figure2", &path).expect("load basis");
            assert_eq!(loaded, entries, "every entry crosses the snapshot");
            let t0 = Instant::now();
            let report = cold
                .submit(JobSpec::sweep("figure2"))
                .expect("submit restored sweep")
                .wait()
                .and_then(JobOutput::into_sweep)
                .expect("restored sweep completes");
            let wall = t0.elapsed();
            let points = report.metrics.points_total();
            ColdStartRun {
                entries,
                snapshot_bytes,
                wall_nanos: wall.as_nanos(),
                points_per_sec: points as f64 / wall.as_secs_f64().max(1e-9),
                points_simulated: report.metrics.points_simulated,
                points_cached: report.metrics.points_cached,
                best: best_str(&report),
            }
        })
        .collect();
    let _ = std::fs::remove_file(&path);
    runs.sort_by_key(|r| r.wall_nanos);
    runs.swap_remove(REPEATS / 2)
}

/// One histogram as a JSON object: count plus p50/p95/p99 bucket
/// ceilings in nanoseconds.
fn hist_json(h: &LatencyHistogram) -> String {
    format!(
        "{{\"count\": {}, \"p50_nanos\": {}, \"p95_nanos\": {}, \"p99_nanos\": {}}}",
        h.count(),
        h.p50(),
        h.p95(),
        h.p99()
    )
}

fn best_str(report: &fuzzy_prophet::OfflineReport) -> String {
    report
        .best
        .as_ref()
        .map(|b| format!("{:?}", b.point.to_string()))
        .unwrap_or_else(|| "null".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut worlds = 32usize;
    // Default the worker pool to the hardware: oversubscribing a small
    // container (4 workers on 1 CPU) only adds context-switch noise to the
    // per-point stopwatches, and the recorded perf trajectory is supposed
    // to measure the engine, not the scheduler.
    let mut threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut out = String::from("BENCH_sweep.json");
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--worlds" => worlds = parse(it.next(), "--worlds"),
            "--threads" => threads = parse(it.next(), "--threads"),
            "--out" => {
                out = it
                    .next()
                    .unwrap_or_else(|| die("--out needs a path"))
                    .clone();
            }
            "--trace-out" => {
                trace_out = Some(
                    it.next()
                        .unwrap_or_else(|| die("--trace-out needs a path"))
                        .clone(),
                );
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let mut sweeps = run_sweeps(
        worlds,
        threads,
        &[
            (ExecTier::Boxed, true),
            (ExecTier::Columnar, true),
            (ExecTier::Boxed, false),
            (ExecTier::Scalar, true),
        ],
    );
    let scalar = sweeps.pop().expect("four sweep configurations");
    let unindexed = sweeps.pop().expect("four sweep configurations");
    let columnar = sweeps.pop().expect("four sweep configurations");
    let vector = sweeps.pop().expect("four sweep configurations");
    let concurrent = run_concurrent(worlds, threads);
    let cold = run_cold_start(worlds, threads);

    let m = &vector.metrics;
    let c = &columnar.metrics;
    let u = &unindexed.metrics;
    let s = &scalar.metrics;
    let worlds_per_walk = if m.vector_walks > 0 {
        m.probe_evaluations as f64 / m.vector_walks as f64
    } else {
        1.0
    };
    let prune_rate = {
        let bounded = m.candidates_scanned + m.candidates_pruned;
        if bounded > 0 {
            m.candidates_pruned as f64 / bounded as f64
        } else {
            0.0
        }
    };
    // Two concurrent jobs on the shared pool versus one blocking sweep:
    // below 1.0, interleaving would cost more than it delivers.
    let scaling = concurrent.points_per_sec / vector.points_per_sec.max(1e-9);

    let json = format!(
        "{{\n  \"workload\": \"figure2_coarse\",\n  \"worlds_per_point\": {worlds},\n  \
         \"threads\": {threads},\n  \"groups\": {},\n  \"points_total\": {},\n  \
         \"points_simulated\": {},\n  \"points_mapped\": {},\n  \"points_cached\": {},\n  \
         \"worlds_simulated\": {},\n  \"batch_probes\": {},\n  \"inflight_waits\": {},\n  \
         \"vector_walks\": {},\n  \"worlds_per_walk\": {worlds_per_walk:.1},\n  \
         \"candidates_scanned\": {},\n  \"candidates_pruned\": {},\n  \
         \"prune_rate\": {prune_rate:.3},\n  \"match_scan_nanos\": {},\n  \
         \"probe_eval_nanos\": {},\n  \"probe_nanos\": {},\n  \"sim_nanos\": {},\n  \
         \"wall_nanos\": {},\n  \"points_per_sec\": {:.1},\n  \"best_point\": {},\n  \
         \"columnar\": {{\n    \"probe_eval_nanos\": {},\n    \"probe_nanos\": {},\n    \
         \"sim_nanos\": {},\n    \"wall_nanos\": {},\n    \"points_per_sec\": {:.1},\n    \
         \"columnar_kernels\": {},\n    \"column_fallbacks\": {}\n  }},\n  \
         \"unindexed\": {{\n    \"candidates_scanned\": {},\n    \
         \"match_scan_nanos\": {},\n    \"probe_nanos\": {},\n    \
         \"wall_nanos\": {},\n    \"points_per_sec\": {:.1}\n  }},\n  \
         \"scalar\": {{\n    \"probe_eval_nanos\": {},\n    \"probe_nanos\": {},\n    \
         \"sim_nanos\": {},\n    \"wall_nanos\": {},\n    \"points_per_sec\": {:.1}\n  }},\n  \
         \"concurrent\": {{\n    \"jobs\": 2,\n    \"points_total\": {},\n    \
         \"wall_nanos\": {},\n    \"points_per_sec\": {:.1},\n    \
         \"scaling\": {scaling:.3},\n    \"hi_wall_nanos\": {}\n  }},\n  \
         \"cold_start\": {{\n    \"entries\": {},\n    \"snapshot_bytes\": {},\n    \
         \"wall_nanos\": {},\n    \"points_per_sec\": {:.1},\n    \
         \"points_simulated\": {},\n    \"points_cached\": {}\n  }},\n  \
         \"telemetry\": {{\n    \"events_recorded\": {},\n    \
         \"events_dropped\": {},\n    \"max_queue_depth\": {},\n    \
         \"chunk_service\": {},\n    \"queue_wait\": {{\n      \
         \"high\": {},\n      \"normal\": {},\n      \"low\": {}\n    }},\n    \
         \"store\": {{\"hits\": {}, \"misses\": {}, \"inflight_waits\": {}, \
         \"evictions\": {}, \"entries\": {}}}\n  }}\n}}\n",
        vector.groups,
        m.points_total(),
        m.points_simulated,
        m.points_mapped,
        m.points_cached,
        m.worlds_simulated,
        m.batch_probes,
        m.inflight_waits,
        m.vector_walks,
        m.candidates_scanned,
        m.candidates_pruned,
        m.match_scan_nanos,
        m.probe_eval_nanos,
        m.probe_nanos,
        m.sim_nanos,
        vector.wall_nanos,
        vector.points_per_sec,
        vector.best,
        c.probe_eval_nanos,
        c.probe_nanos,
        c.sim_nanos,
        columnar.wall_nanos,
        columnar.points_per_sec,
        c.columnar_kernels,
        c.column_fallbacks,
        u.candidates_scanned,
        u.match_scan_nanos,
        u.probe_nanos,
        unindexed.wall_nanos,
        unindexed.points_per_sec,
        s.probe_eval_nanos,
        s.probe_nanos,
        s.sim_nanos,
        scalar.wall_nanos,
        scalar.points_per_sec,
        concurrent.points_total,
        concurrent.wall_nanos,
        concurrent.points_per_sec,
        concurrent.hi_wall_nanos,
        cold.entries,
        cold.snapshot_bytes,
        cold.wall_nanos,
        cold.points_per_sec,
        cold.points_simulated,
        cold.points_cached,
        concurrent.telemetry.trace.events_recorded,
        concurrent.telemetry.trace.events_dropped,
        concurrent.telemetry.trace.max_queue_depth,
        hist_json(&concurrent.telemetry.trace.chunk_service),
        hist_json(&concurrent.telemetry.trace.queue_wait[0]),
        hist_json(&concurrent.telemetry.trace.queue_wait[1]),
        hist_json(&concurrent.telemetry.trace.queue_wait[2]),
        concurrent.store.hits,
        concurrent.store.misses,
        concurrent.store.inflight_waits,
        concurrent.store.evictions,
        concurrent.store.entries,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    print!("{json}");
    if let Some(path) = &trace_out {
        let chrome = chrome_trace_json(&concurrent.trace_events);
        std::fs::write(path, &chrome).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!(
            "trace: {} events from the concurrent run written to {path} \
             (load at chrome://tracing or ui.perfetto.dev)",
            concurrent.trace_events.len(),
        );
    }
    eprintln!(
        "vector sweep: {} points in {:.1}ms ({:.1} points/sec); \
         probe {:.1}ms vs sim {:.1}ms; {} walks ({worlds_per_walk:.0} worlds/walk)",
        m.points_total(),
        vector.wall_nanos as f64 / 1e6,
        vector.points_per_sec,
        m.probe_nanos as f64 / 1e6,
        m.sim_nanos as f64 / 1e6,
        m.vector_walks,
    );
    eprintln!(
        "match index: {} scanned / {} pruned ({:.0}% prune rate); \
         match scan {:.1}ms vs {:.1}ms unindexed ({} pairs) — {:.2}x",
        m.candidates_scanned,
        m.candidates_pruned,
        prune_rate * 100.0,
        m.match_scan_nanos as f64 / 1e6,
        u.match_scan_nanos as f64 / 1e6,
        u.candidates_scanned,
        u.match_scan_nanos as f64 / (m.match_scan_nanos as f64).max(1.0),
    );
    eprintln!(
        "scalar sweep: probe {:.1}ms vs sim {:.1}ms ({:.1} points/sec); \
         vector probe-eval speedup {:.2}x ({:.1}ms -> {:.1}ms)",
        s.probe_nanos as f64 / 1e6,
        s.sim_nanos as f64 / 1e6,
        scalar.points_per_sec,
        s.probe_eval_nanos as f64 / (m.probe_eval_nanos as f64).max(1.0),
        s.probe_eval_nanos as f64 / 1e6,
        m.probe_eval_nanos as f64 / 1e6,
    );
    eprintln!(
        "columnar sweep: probe-eval {:.1}ms vs {:.1}ms boxed ({:.2}x); \
         {} typed kernels, {} fallbacks",
        c.probe_eval_nanos as f64 / 1e6,
        m.probe_eval_nanos as f64 / 1e6,
        m.probe_eval_nanos as f64 / (c.probe_eval_nanos as f64).max(1.0),
        c.columnar_kernels,
        c.column_fallbacks,
    );
    assert_eq!(
        vector.best, unindexed.best,
        "indexed and unindexed sweeps must agree on the sweep answer"
    );
    assert_eq!(
        vector.best, scalar.best,
        "tiers must agree on the sweep answer"
    );
    assert_eq!(
        vector.best, columnar.best,
        "the columnar tier must agree on the sweep answer"
    );
    assert_eq!(
        c.column_fallbacks, 0,
        "the coarse Figure 2 sweep must stay fully typed — no boxed fallbacks"
    );
    assert_eq!(
        u.candidates_pruned, 0,
        "the exhaustive scan must not prune anything"
    );
    eprintln!(
        "concurrent jobs: {} points across 2 sweeps in {:.1}ms ({:.1} points/sec, \
         {scaling:.2}x the blocking tier); high-priority job returned after {:.1}ms \
         ({:.0}% of total wall)",
        concurrent.points_total,
        concurrent.wall_nanos as f64 / 1e6,
        concurrent.points_per_sec,
        concurrent.hi_wall_nanos as f64 / 1e6,
        100.0 * concurrent.hi_wall_nanos as f64 / concurrent.wall_nanos as f64,
    );
    assert_eq!(
        concurrent.hi_best, vector.best,
        "the high-priority concurrent sweep must reach the single-job answer"
    );
    assert_eq!(
        concurrent.lo_best, vector.best,
        "the low-priority concurrent sweep must reach the single-job answer"
    );
    assert!(
        scaling >= 1.0,
        "two concurrent jobs must not run slower than one blocking sweep \
         (scaling {scaling:.3}: {:.1} vs {:.1} points/sec)",
        concurrent.points_per_sec,
        vector.points_per_sec,
    );
    eprintln!(
        "cold start: {} entries restored from a {}-byte snapshot; sweep served \
         entirely from the basis in {:.1}ms ({:.1} points/sec, {} simulated / {} cached)",
        cold.entries,
        cold.snapshot_bytes,
        cold.wall_nanos as f64 / 1e6,
        cold.points_per_sec,
        cold.points_simulated,
        cold.points_cached,
    );
    assert!(
        cold.entries > 0,
        "the warm sweep must publish basis entries"
    );
    assert_eq!(
        cold.points_simulated, 0,
        "a sweep on the restored basis must simulate nothing"
    );
    assert_eq!(
        cold.best, vector.best,
        "the restored sweep must reach the single-job answer"
    );
    let t = &concurrent.telemetry.trace;
    eprintln!(
        "telemetry: {} events ({} dropped); chunk service p50/p95/p99 = \
         {:.1}/{:.1}/{:.1}us; max queue depth {}",
        t.events_recorded,
        t.events_dropped,
        t.chunk_service.p50() as f64 / 1e3,
        t.chunk_service.p95() as f64 / 1e3,
        t.chunk_service.p99() as f64 / 1e3,
        t.max_queue_depth,
    );
    assert!(
        t.events_recorded > 0 && t.chunk_service.count() > 0,
        "the concurrent run keeps its flight recorder armed"
    );
}

fn parse(arg: Option<&String>, flag: &str) -> usize {
    arg.and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: sweep_smoke [--worlds N] [--threads N] [--out PATH] [--trace-out PATH]");
    std::process::exit(2);
}
