//! Bench smoke: run the experiment harness's offline sweep on a small
//! workload and emit `BENCH_sweep.json` so the perf trajectory of the
//! batched evaluation executor is recorded per commit.
//!
//! ```sh
//! cargo run --release -p prophet-bench --bin sweep_smoke
//! cargo run --release -p prophet-bench --bin sweep_smoke -- --worlds 64 --threads 4 --out BENCH_sweep.json
//! ```
//!
//! The JSON reports sweep throughput (points/sec) and the executor's
//! probe-vs-simulation wall-clock split (`probe_nanos` / `sim_nanos`), the
//! two numbers the ROADMAP's hot-path items are tracked by.

use std::time::Instant;

use fuzzy_prophet::prelude::*;
use prophet_bench::workloads::{demo_optimizer, figure2_coarse};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut worlds = 32usize;
    let mut threads = 4usize;
    let mut out = String::from("BENCH_sweep.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--worlds" => worlds = parse(it.next(), "--worlds"),
            "--threads" => threads = parse(it.next(), "--threads"),
            "--out" => {
                out = it
                    .next()
                    .unwrap_or_else(|| die("--out needs a path"))
                    .clone();
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let config = EngineConfig {
        worlds_per_point: worlds,
        threads,
        ..EngineConfig::default()
    };
    let optimizer = demo_optimizer(figure2_coarse(0.05), config);
    let groups = optimizer.groups_total();
    let t0 = Instant::now();
    let report = optimizer.run().expect("sweep must complete");
    let wall = t0.elapsed();

    let m = report.metrics;
    let points = m.points_total();
    let points_per_sec = points as f64 / wall.as_secs_f64().max(1e-9);
    let best = report
        .best
        .as_ref()
        .map(|b| format!("{:?}", b.point.to_string()))
        .unwrap_or_else(|| "null".to_string());

    let json = format!(
        "{{\n  \"workload\": \"figure2_coarse\",\n  \"worlds_per_point\": {worlds},\n  \
         \"threads\": {threads},\n  \"groups\": {groups},\n  \"points_total\": {points},\n  \
         \"points_simulated\": {},\n  \"points_mapped\": {},\n  \"points_cached\": {},\n  \
         \"worlds_simulated\": {},\n  \"batch_probes\": {},\n  \"inflight_waits\": {},\n  \
         \"probe_nanos\": {},\n  \"sim_nanos\": {},\n  \"wall_nanos\": {},\n  \
         \"points_per_sec\": {points_per_sec:.1},\n  \"best_point\": {best}\n}}\n",
        m.points_simulated,
        m.points_mapped,
        m.points_cached,
        m.worlds_simulated,
        m.batch_probes,
        m.inflight_waits,
        m.probe_nanos,
        m.sim_nanos,
        wall.as_nanos(),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    print!("{json}");
    eprintln!(
        "sweep: {points} points in {wall:?} ({points_per_sec:.1} points/sec); \
         probe {:.1}ms vs sim {:.1}ms",
        m.probe_nanos as f64 / 1e6,
        m.sim_nanos as f64 / 1e6,
    );
}

fn parse(arg: Option<&String>, flag: &str) -> usize {
    arg.and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: sweep_smoke [--worlds N] [--threads N] [--out PATH]");
    std::process::exit(2);
}
