//! Shared workload definitions for the experiment harness and the
//! Criterion benches.

use fuzzy_prophet::prelude::*;
use prophet_models::demo_registry;

/// The demo's default slider settings (§3.2): first purchase week 16,
/// second week 36, feature release week 12.
pub const DEFAULT_PURCHASE1: i64 = 16;
/// See [`DEFAULT_PURCHASE1`].
pub const DEFAULT_PURCHASE2: i64 = 36;
/// See [`DEFAULT_PURCHASE1`].
pub const DEFAULT_FEATURE: i64 = 12;

/// A reduced-grid Figure 2 used by sweep-heavy experiments: identical
/// structure, coarser purchase grid so full sweeps complete in seconds.
/// `{THRESHOLD}` is substituted by the caller. (Shared with the examples
/// and differential tests through `prophet_models::scenarios`.)
pub use prophet_models::scenarios::FIGURE2_COARSE;

/// The coarse scenario with a threshold substituted in.
pub fn figure2_coarse(threshold: f64) -> Scenario {
    Scenario::parse(&prophet_models::scenarios::figure2_coarse_sql(threshold))
        .expect("coarse Figure 2 must parse")
}

/// Engine config used across experiments unless a knob is under study.
pub fn standard_config(worlds: usize) -> EngineConfig {
    EngineConfig {
        worlds_per_point: worlds,
        ..EngineConfig::default()
    }
}

/// A single-scenario service over the demo registry — each call builds a
/// fresh service (fresh basis store), which is what cold-vs-warm
/// comparisons need.
pub fn demo_service(scenario: Scenario, config: EngineConfig) -> Prophet {
    Prophet::builder()
        .scenario("bench", scenario)
        .registry(demo_registry())
        .config(config)
        .build()
        .expect("service construction")
}

/// An offline optimizer on a fresh service.
pub fn demo_optimizer(scenario: Scenario, config: EngineConfig) -> OfflineOptimizer {
    demo_service(scenario, config)
        .offline("bench")
        .expect("OPTIMIZE directive present")
}

/// An online session on the *full* Figure-2 scenario at the demo's default
/// sliders, already refreshed once (warm graph).
pub fn warm_session(worlds: usize) -> OnlineSession {
    let mut session = cold_session(worlds);
    session
        .set_param("purchase1", DEFAULT_PURCHASE1)
        .expect("valid slider");
    session
        .set_param("purchase2", DEFAULT_PURCHASE2)
        .expect("valid slider");
    session
        .set_param("feature", DEFAULT_FEATURE)
        .expect("valid slider");
    session.refresh().expect("initial render");
    session
}

/// A fresh (cold) session on the full Figure-2 scenario — *not* refreshed,
/// sliders at their domain minima. Callers set sliders themselves (which
/// costs a refresh each) or measure the cold render directly.
pub fn cold_session(worlds: usize) -> OnlineSession {
    demo_service(
        Scenario::figure2().expect("Figure 2 parses"),
        standard_config(worlds),
    )
    .online("bench")
    .expect("session construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_scenario_parses_for_both_thresholds() {
        assert_eq!(figure2_coarse(0.01).script().params.len(), 4);
        let s = figure2_coarse(0.05);
        assert!(
            (s.script().optimize.as_ref().unwrap().constraints[0].threshold - 0.05).abs() < 1e-12
        );
    }

    #[test]
    fn warm_session_has_a_full_graph() {
        let s = warm_session(8);
        assert_eq!(s.graph()[0].points.len(), 53);
        assert_eq!(s.sliders().get("purchase1"), Some(DEFAULT_PURCHASE1));
    }
}
