//! # prophet-mc
//!
//! The Monte Carlo possible-worlds engine, in the MCDB tradition: this crate
//! implements the middle of the paper's Figure-1 cycle.
//!
//! * [`instance`] — [`instance::ParamPoint`]: a concrete valuation for every
//!   scenario parameter; together with a world id it forms an *instance* (a
//!   possible world).
//! * [`guide`] — the **Guide** component: strategies that "direct scenario
//!   evaluation by producing a sequence of instances" (§2). Exhaustive grid
//!   sweeps for offline mode, priority-driven exploration with anticipatory
//!   prefetch for online mode.
//! * [`batch`] — the **Query Generator**: batches instances and executes
//!   them against the `prophet-sql` executor, producing per-column sample
//!   sets.
//! * [`aggregate`] — the **Result Aggregator**: streaming statistics
//!   (Welford), probability estimates, confidence intervals, convergence
//!   detection, and histograms.
//! * [`series`] — per-X-axis series construction for the `GRAPH OVER`
//!   directive.
//! * [`trace`] — the flight recorder and latency-histogram telemetry
//!   shared with the scheduler tier (re-exported as
//!   `fuzzy_prophet::trace`; see `docs/OBSERVABILITY.md`).

pub mod aggregate;
pub mod batch;
pub mod guide;
pub mod instance;
pub mod materialize;
pub mod series;
pub mod store;
pub mod sync;
pub mod trace;

pub use aggregate::{Histogram, SampleStats, Welford};
pub use batch::{simulate_point, simulate_point_block, simulate_point_columnar, SampleSet};
pub use guide::{GridGuide, Guide, GuideFactory, PriorityGuide, RandomGuide};
pub use instance::ParamPoint;
pub use materialize::{summary_table, worlds_table};
pub use series::{Series, SeriesPoint};
pub use store::{
    BasisHit, ColumnSamples, InflightGuard, MatchScanStats, SharedBasisStore, SnapshotError,
    StoreStatsSnapshot, TryClaim, WaitHandle, DEFAULT_SHARDS,
};
pub use sync::MAX_SHARDS;
pub use trace::{
    LatencyHistogram, TraceConfig, TraceEvent, TraceEventKind, TraceTelemetry, Tracer,
};
