//! The shared, parameter-point-keyed basis store.
//!
//! The paper's Storage Manager holds "the set of basis distributions
//! containing the output of prior scenario evaluation runs". In the demo
//! that store lived inside a single GUI session; the service architecture
//! shares one store per scenario across *every* session, so a slider move in
//! one session can re-map results another session simulated
//! ([`SharedBasisStore`] is `Clone` + thread-safe: clones are handles onto
//! the same `Arc<RwLock<…>>`-backed state).
//!
//! This is the engine-level sibling of
//! [`prophet_fingerprint::BasisStore`]: that store is generic and keyed by
//! fingerprint alone; this one is keyed by [`ParamPoint`] and stores the
//! per-column fingerprints plus full sample sets the Figure-1 evaluation
//! cycle needs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use prophet_fingerprint::{CorrelationDetector, Fingerprint, Mapping};

use crate::instance::ParamPoint;

/// Per-column Monte Carlo samples for one parameter point.
pub type ColumnSamples = HashMap<String, Vec<f64>>;

/// A successful correlated lookup: where the samples came from and how to
/// map each stochastic column onto the queried parameterization.
pub struct BasisHit {
    /// The basis point whose samples matched.
    pub source: ParamPoint,
    /// Per-column mapping from the source samples to the queried point.
    pub mappings: HashMap<String, Mapping>,
    /// The source point's stored samples (all columns).
    pub samples: Arc<ColumnSamples>,
    /// Worlds backing the stored samples.
    pub worlds: usize,
}

struct Record {
    fingerprints: HashMap<String, Fingerprint>,
    /// Samples for *all* output columns (stochastic and derived).
    samples: Arc<ColumnSamples>,
    worlds: usize,
    stamp: u64,
    /// Whether this entry may serve as a *source* for fingerprint matching.
    /// Only fully simulated entries qualify: a point reachable through an
    /// exact-mapped entry is also reachable through that entry's own
    /// source, so restricting candidates to simulated entries keeps match
    /// scans proportional to the number of genuinely distinct
    /// distributions, not the number of visited points.
    matchable: bool,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<ParamPoint, Record>,
    next_stamp: u64,
}

/// Thread-safe basis store shared between engines/sessions of one scenario.
///
/// Cloning produces another handle onto the same store. Capacity is
/// bounded; eviction drops the oldest *mapped* entry first, because
/// simulated entries are the sources fingerprint matching lives on.
#[derive(Clone)]
pub struct SharedBasisStore {
    inner: Arc<RwLock<Inner>>,
    stats: Arc<StoreStats>,
    capacity: usize,
}

#[derive(Default)]
struct StoreStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedBasisStore {
    /// Create an empty store holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a store that cannot hold anything is a
    /// configuration bug).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "basis store capacity must be positive");
        SharedBasisStore {
            inner: Arc::new(RwLock::new(Inner::default())),
            stats: Arc::new(StoreStats::default()),
            capacity,
        }
    }

    /// Maximum number of entries before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.read().entries.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (forces cold start) and reset hit accounting.
    pub fn clear(&self) {
        self.write().entries.clear();
        self.stats.hits.store(0, Ordering::Relaxed);
        self.stats.misses.store(0, Ordering::Relaxed);
    }

    /// `(hits, misses)` of [`SharedBasisStore::find_correlated`] so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.stats.hits.load(Ordering::Relaxed),
            self.stats.misses.load(Ordering::Relaxed),
        )
    }

    /// True if `other` is a handle onto the same underlying store.
    pub fn shares_storage_with(&self, other: &SharedBasisStore) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Exact lookup: stored samples for `point`, provided they are backed by
    /// at least `min_worlds` worlds.
    pub fn get_exact(&self, point: &ParamPoint, min_worlds: usize) -> Option<Arc<ColumnSamples>> {
        self.read()
            .entries
            .get(point)
            .filter(|e| e.worlds >= min_worlds)
            .map(|e| Arc::clone(&e.samples))
    }

    /// Insert (or replace) the entry for `point`. `matchable` marks fully
    /// simulated entries that may serve as mapping sources.
    pub fn insert(
        &self,
        point: ParamPoint,
        fingerprints: HashMap<String, Fingerprint>,
        samples: Arc<ColumnSamples>,
        worlds: usize,
        matchable: bool,
    ) {
        let mut inner = self.write();
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&point) {
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| !e.matchable)
                .min_by_key(|(_, e)| e.stamp)
                .or_else(|| inner.entries.iter().min_by_key(|(_, e)| e.stamp))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                inner.entries.remove(&victim);
            }
        }
        inner.entries.insert(
            point,
            Record {
                fingerprints,
                samples,
                worlds,
                stamp,
                matchable,
            },
        );
    }

    /// Search the store for a matchable entry where *every* column in
    /// `columns` has a detectable mapping onto the probe fingerprints.
    /// Returns the best (lowest total error) candidate.
    pub fn find_correlated(
        &self,
        probes: &HashMap<String, Fingerprint>,
        columns: &[String],
        detector: &CorrelationDetector,
    ) -> Option<BasisHit> {
        let inner = self.read();
        let mut best: Option<(BasisHit, f64)> = None;
        for (source_point, entry) in &inner.entries {
            if !entry.matchable || entry.fingerprints.is_empty() {
                continue;
            }
            let mut mappings = HashMap::with_capacity(columns.len());
            let mut total_err = 0.0;
            let mut all_matched = true;
            for col in columns {
                let (Some(source_fp), Some(probe_fp)) =
                    (entry.fingerprints.get(col), probes.get(col))
                else {
                    all_matched = false;
                    break;
                };
                match detector.detect(source_fp, probe_fp) {
                    Some(mapping) => {
                        total_err += mapping.error_std();
                        mappings.insert(col.clone(), mapping);
                    }
                    None => {
                        all_matched = false;
                        break;
                    }
                }
            }
            if !all_matched {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, err)) => total_err < *err,
            };
            if better {
                let exact = total_err == 0.0;
                best = Some((
                    BasisHit {
                        source: source_point.clone(),
                        mappings,
                        samples: Arc::clone(&entry.samples),
                        worlds: entry.worlds,
                    },
                    total_err,
                ));
                if exact {
                    // Nothing can beat an exact mapping; stop scanning.
                    break;
                }
            }
        }
        drop(inner);
        match best {
            Some((hit, _)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().expect("basis store lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().expect("basis store lock poisoned")
    }
}

impl std::fmt::Debug for SharedBasisStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.hit_stats();
        f.debug_struct("SharedBasisStore")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, v: i64) -> ParamPoint {
        ParamPoint::from_pairs([(name.to_owned(), v)])
    }

    fn fp(values: &[f64]) -> Fingerprint {
        Fingerprint::from_values(values.to_vec())
    }

    fn samples(v: f64) -> Arc<ColumnSamples> {
        Arc::new(HashMap::from([("y".to_owned(), vec![v, v + 1.0])]))
    }

    #[test]
    fn exact_lookup_respects_min_worlds() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        s.insert(p.clone(), HashMap::new(), samples(1.0), 50, true);
        assert!(s.get_exact(&p, 50).is_some());
        assert!(s.get_exact(&p, 51).is_none(), "too few worlds stored");
        assert!(s.get_exact(&point("x", 2), 1).is_none());
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedBasisStore::new(8);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
        a.insert(point("x", 1), HashMap::new(), samples(0.0), 10, true);
        assert_eq!(
            b.len(),
            1,
            "insert through one handle is visible through the other"
        );
        b.clear();
        assert!(a.is_empty());
        assert!(!a.shares_storage_with(&SharedBasisStore::new(8)));
    }

    #[test]
    fn correlated_lookup_finds_offset_related_entry() {
        let s = SharedBasisStore::new(8);
        let base = [1.0, 2.0, 3.0, 5.0];
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(10.0),
            100,
            true,
        );
        let shifted: Vec<f64> = base.iter().map(|v| v + 7.0).collect();
        let probes = HashMap::from([("y".to_owned(), fp(&shifted))]);
        let hit = s
            .find_correlated(&probes, &["y".to_owned()], &CorrelationDetector::default())
            .expect("offset relation must match");
        assert_eq!(hit.source, point("x", 1));
        assert_eq!(hit.worlds, 100);
        assert_eq!(hit.mappings["y"], Mapping::Offset(7.0));
        assert_eq!(s.hit_stats(), (1, 0));
    }

    #[test]
    fn unmatchable_entries_are_skipped() {
        let s = SharedBasisStore::new(8);
        let base = [1.0, 2.0, 3.0, 5.0];
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(0.0),
            100,
            false, // mapped entry: not a matching source
        );
        let probes = HashMap::from([("y".to_owned(), fp(&base))]);
        assert!(s
            .find_correlated(&probes, &["y".to_owned()], &CorrelationDetector::default())
            .is_none());
        assert_eq!(s.hit_stats(), (0, 1));
    }

    #[test]
    fn eviction_prefers_unmatchable_entries() {
        let s = SharedBasisStore::new(2);
        s.insert(point("x", 1), HashMap::new(), samples(0.0), 10, true);
        s.insert(point("x", 2), HashMap::new(), samples(0.0), 10, false);
        s.insert(point("x", 3), HashMap::new(), samples(0.0), 10, true);
        assert_eq!(s.len(), 2);
        assert!(
            s.get_exact(&point("x", 1), 1).is_some(),
            "simulated source survives"
        );
        assert!(
            s.get_exact(&point("x", 2), 1).is_none(),
            "mapped entry evicted first"
        );
        assert!(s.get_exact(&point("x", 3), 1).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SharedBasisStore::new(0);
    }
}
