//! The shared, parameter-point-keyed basis store.
//!
//! The paper's Storage Manager holds "the set of basis distributions
//! containing the output of prior scenario evaluation runs". In the demo
//! that store lived inside a single GUI session; the service architecture
//! shares one store per scenario across *every* session, so a slider move in
//! one session can re-map results another session simulated
//! ([`SharedBasisStore`] is `Clone` + thread-safe: clones are handles onto
//! the same shared state).
//!
//! Beyond storage, the store coordinates *work*: per-point in-flight guards
//! ([`SharedBasisStore::try_claim`]) guarantee that N concurrent sessions
//! evaluating the same cold point block on one simulation instead of each
//! running it (the thundering-herd dedup), and
//! [`SharedBasisStore::find_correlated_batch`] probes many fingerprint sets
//! against the candidate sources in one source-parallel scan.
//!
//! # Sharding
//!
//! Entries live in [`rank::STORE_SHARDS`]-ranked shards keyed by
//! `ParamPoint::stable_hash() % shards`: exact lookups, claims, and inserts
//! touch one shard's lock, so concurrent jobs evaluating disjoint points no
//! longer serialize on a single store-wide `RwLock`. Cross-shard invariants
//! — the global insertion-stamp counter, the point→(stamp, matchability)
//! index, and the stamp-ordered eviction queues — live under one
//! [`rank::STORE_META`] mutex that inserts hold *across* their shard
//! acquisitions, so eviction decisions are global (a victim is the oldest
//! entry in the whole store, never merely the oldest in one shard) and
//! therefore identical at every shard count.
//!
//! The match scan stays globally deterministic by construction: it takes
//! every shard's read lock (ascending, per the rank table), merges the
//! per-shard stamp-ordered candidate lists into one list sorted by global
//! insertion stamp — stamps are unique, so the merge reproduces the exact
//! single-shard candidate order — and runs the wave scan over that merged
//! list. Wave boundaries, pruning decisions, chosen sources, and the
//! scanned/pruned accounting are all functions of the merged order alone,
//! so they are bit-identical at any shard count and any thread count.
//! (Running waves per shard instead would change which candidates get
//! pruned as the shard count changes; the merge is what keeps
//! [`MatchScanStats`] a pure function of store contents and probes.)
//!
//! # The summary index
//!
//! Every published matchable record stores per-column
//! [`FingerprintSummary`] moments (`prophet_fingerprint::index`), and the
//! scan walks candidates in insertion-stamp order in fixed-size waves,
//! pruning every candidate whose summary bound proves it cannot beat the
//! best match found in earlier waves (or cannot match at all) before paying
//! for the entry-by-entry [`CorrelationDetector::detect_all`] comparison.
//! Because the bound is a true lower bound and ties resolve to the earliest
//! stamp, the chosen source is identical to the exhaustive scan's — and
//! because pruning decisions consult only completed waves (a constant wave
//! width, independent of `threads`), the scanned/pruned accounting is
//! identical at every thread count. The index is maintained under publish,
//! replace, eviction and clear; `find_correlated_batch_scan(…, use_index:
//! false)` keeps the exhaustive scan available for differential testing.
//!
//! # Persistence
//!
//! A store's records — samples, fingerprints, stamps, matchability — are a
//! self-contained serializable unit: [`SharedBasisStore::snapshot_bytes`]
//! emits them in global stamp order (shard-count-independent bytes) and
//! [`SharedBasisStore::restore_bytes`] rebuilds a store that scans, evicts,
//! and stamps exactly like the original, so a service restart warms from
//! disk instead of re-simulating its basis population. The format is
//! checksummed and versioned; corrupt input is rejected with a typed
//! [`SnapshotError`] before any store state is touched.
//!
//! This is the engine-level sibling of
//! [`prophet_fingerprint::BasisStore`]: that store is generic and keyed by
//! fingerprint alone; this one is keyed by [`ParamPoint`] and stores the
//! per-column fingerprints plus full sample sets the Figure-1 evaluation
//! cycle needs.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use prophet_fingerprint::index::{bound_all, summarize, FingerprintSummary, MatchBound};
use prophet_fingerprint::{CorrelationDetector, Fingerprint, Mapping};

use crate::instance::ParamPoint;
use crate::sync::{
    rank, ClaimLedger, OrderedCondvar, OrderedMutex, OrderedReadGuard, OrderedRwLock,
    OrderedWriteGuard, MAX_SHARDS,
};
use crate::trace::{TraceEventKind, Tracer, NO_CHUNK, NO_JOB};

/// Per-column Monte Carlo samples for one parameter point.
pub type ColumnSamples = HashMap<String, Vec<f64>>;

/// Default shard count of a [`SharedBasisStore`]; see
/// [`SharedBasisStore::with_shards`] for the bounds.
pub const DEFAULT_SHARDS: usize = 8;

/// A successful correlated lookup: where the samples came from and how to
/// map each stochastic column onto the queried parameterization.
pub struct BasisHit {
    /// The basis point whose samples matched.
    pub source: ParamPoint,
    /// Per-column mapping from the source samples to the queried point.
    pub mappings: HashMap<String, Mapping>,
    /// The source point's stored samples (all columns).
    pub samples: Arc<ColumnSamples>,
    /// Worlds backing the stored samples.
    pub worlds: usize,
}

struct Record {
    fingerprints: Arc<HashMap<String, Fingerprint>>,
    /// Per-column summary statistics of `fingerprints`, precomputed at
    /// publish time so the match scan can bound this record's error
    /// against any probe without touching the fingerprints themselves.
    /// Empty for unmatchable records (they are never candidates).
    summaries: Arc<HashMap<String, FingerprintSummary>>,
    /// Samples for *all* output columns (stochastic and derived).
    samples: Arc<ColumnSamples>,
    worlds: usize,
    stamp: u64,
    /// Whether this entry may serve as a *source* for fingerprint matching.
    /// Only fully simulated entries qualify: a point reachable through an
    /// exact-mapped entry is also reachable through that entry's own
    /// source, so restricting candidates to simulated entries keeps match
    /// scans proportional to the number of genuinely distinct
    /// distributions, not the number of visited points.
    matchable: bool,
}

/// One shard of the entry table. `order` holds this shard's *matchable*
/// entries keyed by insertion stamp — the shard's slice of the global
/// candidate list, merged across shards (stamps are globally unique) at
/// scan time.
#[derive(Default)]
struct Shard {
    entries: HashMap<ParamPoint, Record>,
    order: BTreeMap<u64, ParamPoint>,
}

/// Store-wide bookkeeping, held under [`rank::STORE_META`] *across* shard
/// acquisitions: the stamp counter, the membership index, and the
/// stamp-ordered eviction queues. Keeping eviction global — rather than
/// per-shard — is what makes the surviving entry set independent of the
/// shard count: the victim is always the globally oldest (unmatchable
/// first), found in O(log n) off the queues instead of the old
/// O(n)-per-insert full-table `min_by_key` scan.
#[derive(Default)]
struct Meta {
    next_stamp: u64,
    /// Every stored point → (insertion stamp, matchable).
    index: HashMap<ParamPoint, (u64, bool)>,
    /// Unmatchable (mapped) entries by stamp: evicted first, oldest first.
    unmatchable_queue: BTreeMap<u64, ParamPoint>,
    /// Matchable (simulated) entries by stamp: evicted only when no
    /// unmatchable entry remains.
    matchable_queue: BTreeMap<u64, ParamPoint>,
}

/// State of one in-flight simulation slot.
enum SlotState {
    /// The owning session is still computing.
    Running,
    /// The owner published: waiters reuse these samples directly (immune to
    /// store eviction — the hand-off does not go through the entry table).
    Done {
        samples: Arc<ColumnSamples>,
        worlds: usize,
    },
    /// The owner failed or the store was cleared mid-flight: waiters must
    /// re-claim and re-simulate.
    Cancelled,
}

/// One pending parameter point: a condvar-notified state cell shared by the
/// owner and every waiter.
struct PendingSlot {
    state: OrderedMutex<SlotState>,
    cv: OrderedCondvar,
}

impl PendingSlot {
    fn new() -> Self {
        PendingSlot {
            state: OrderedMutex::new(rank::INFLIGHT_SLOT, SlotState::Running),
            cv: OrderedCondvar::new(),
        }
    }

    /// Cancel if still running, waking every waiter.
    fn cancel(&self) {
        let mut state = self.state.lock();
        if matches!(*state, SlotState::Running) {
            *state = SlotState::Cancelled;
        }
        drop(state);
        self.cv.notify_all();
    }
}

struct Inflight {
    slots: OrderedMutex<HashMap<ParamPoint, Arc<PendingSlot>>>,
    /// Claim-protocol checker: every point must walk claimed → simulated →
    /// published (or claimed → cancelled) exactly once per claim. A no-op
    /// unless `cfg(any(test, feature = "check"))`.
    ledger: ClaimLedger<ParamPoint>,
}

impl Default for Inflight {
    fn default() -> Self {
        Inflight {
            slots: OrderedMutex::new(rank::INFLIGHT_TABLE, HashMap::new()),
            ledger: ClaimLedger::new(),
        }
    }
}

/// Outcome of [`SharedBasisStore::try_claim`].
pub enum TryClaim {
    /// The caller owns this point's simulation: it must publish through the
    /// guard ([`InflightGuard::complete`]) or drop it to release waiters.
    Owner(InflightGuard),
    /// The point is already stored with enough worlds.
    Ready {
        /// The stored per-column samples.
        samples: Arc<ColumnSamples>,
        /// Worlds backing them.
        worlds: usize,
    },
    /// Another session is simulating this point right now: block on the
    /// handle instead of duplicating the work.
    Pending(WaitHandle),
}

/// A claim on one parameter point's simulation. Dropping the guard without
/// completing (error or panic on the owning path) cancels the slot so
/// waiters wake up and re-claim.
pub struct InflightGuard {
    store: SharedBasisStore,
    point: ParamPoint,
    slot: Arc<PendingSlot>,
    completed: bool,
}

impl InflightGuard {
    /// The claimed point.
    pub fn point(&self) -> &ParamPoint {
        &self.point
    }

    /// Publish the computed samples: wake every waiter with them and insert
    /// the basis entry. Returns `false` when the store was cleared while
    /// the simulation was in flight — the results are *not* inserted (clear
    /// means "force cold start", so pre-clear work must not resurrect) and
    /// waiters have already been released to re-simulate.
    ///
    /// The whole publish — state flip, entry insert, slot removal — happens
    /// under the in-flight table lock, the same lock [`SharedBasisStore::clear`]
    /// and [`SharedBasisStore::try_claim`] serialize on. That atomicity is
    /// what the two guarantees rest on: a concurrent clear lands either
    /// entirely before this publish (the slot is already cancelled, the
    /// results are discarded) or entirely after (the inserted entry is
    /// wiped); and a concurrent `try_claim` can never observe the gap
    /// between "slot gone" and "entry inserted", so it cannot become a
    /// duplicate owner of work that just finished.
    pub fn complete(
        mut self,
        fingerprints: HashMap<String, Fingerprint>,
        samples: Arc<ColumnSamples>,
        worlds: usize,
        matchable: bool,
    ) -> bool {
        self.completed = true;
        let mut slots = self.store.inflight.slots.lock();
        {
            let mut state = self.slot.state.lock();
            if matches!(*state, SlotState::Cancelled) {
                // A clear detached this slot mid-flight: discard. The clear
                // already released this point's claim in the ledger.
                return false;
            }
            *state = SlotState::Done {
                samples: Arc::clone(&samples),
                worlds,
            };
        }
        self.store.inflight.ledger.on_simulated(&self.point);
        self.slot.cv.notify_all();
        self.store
            .insert(self.point.clone(), fingerprints, samples, worlds, matchable);
        self.store.inflight.ledger.on_published(&self.point);
        if let Some(current) = slots.get(&self.point) {
            if Arc::ptr_eq(current, &self.slot) {
                slots.remove(&self.point);
            }
        }
        self.store.inflight.ledger.on_released(&self.point);
        drop(slots);
        self.store
            .tracer
            .instant(TraceEventKind::StorePublish, NO_JOB, NO_CHUNK);
        true
    }

    /// Remove this slot from the pending table (if it is still the
    /// registered one — a clear may have already detached it). Returns
    /// whether this call detached it.
    fn detach(&self) -> bool {
        let mut slots = self.store.inflight.slots.lock();
        if let Some(current) = slots.get(&self.point) {
            if Arc::ptr_eq(current, &self.slot) {
                slots.remove(&self.point);
                return true;
            }
        }
        false
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        if !self.completed {
            // Cancellation: claimed → released, never simulated. If a clear
            // already detached the slot it also released the claim, so only
            // the detaching party reports the release.
            if self.detach() {
                self.store.inflight.ledger.on_released(&self.point);
            }
            self.slot.cancel();
        }
    }
}

/// A ticket for a simulation owned by another session.
pub struct WaitHandle {
    slot: Arc<PendingSlot>,
    stats: Arc<OrderedMutex<Counters>>,
    tracer: Tracer,
}

impl WaitHandle {
    /// Block until the owning session publishes or cancels. `Some` carries
    /// the published samples (counted as an in-flight wait); `None` means
    /// the simulation was abandoned (owner failure or a store clear) — the
    /// caller should re-claim and, if it becomes the owner, re-simulate.
    pub fn wait(self) -> Option<(Arc<ColumnSamples>, usize)> {
        let start = self.tracer.now();
        let result = {
            let mut state = self.slot.state.lock();
            loop {
                match &*state {
                    SlotState::Running => {
                        state = self.slot.cv.wait(state);
                    }
                    SlotState::Done { samples, worlds } => {
                        self.stats.lock().inflight_waits += 1;
                        break Some((Arc::clone(samples), *worlds));
                    }
                    SlotState::Cancelled => break None,
                }
            }
        };
        self.tracer
            .span(TraceEventKind::StoreWait, NO_JOB, NO_CHUNK, start);
        self.tracer
            .record_store_wait(self.tracer.now().saturating_sub(start));
        result
    }
}

/// Cross-session counters of one shared store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStatsSnapshot {
    /// Correlated probes that found a source.
    pub hits: u64,
    /// Correlated probes that found none.
    pub misses: u64,
    /// Evaluations served by blocking on another session's in-flight
    /// simulation instead of running their own.
    pub inflight_waits: u64,
    /// Entries dropped to make room for newer ones.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// The store's counter ledger. One mutex (rank [`rank::STORE_STATS`], a
/// leaf above every shard) instead of independent atomics: a snapshot is a
/// single critical section, so its fields can never be mutually torn.
#[derive(Default)]
struct Counters {
    hits: u64,
    misses: u64,
    inflight_waits: u64,
    evictions: u64,
}

/// Thread-safe basis store shared between engines/sessions of one scenario.
///
/// Cloning produces another handle onto the same store. Capacity is
/// bounded *globally* (not per shard); eviction drops the oldest *mapped*
/// entry first, because simulated entries are the sources fingerprint
/// matching lives on. In-flight claims live outside the bounded entry
/// table, so eviction can never drop a pending simulation.
#[derive(Clone)]
pub struct SharedBasisStore {
    /// The entry-table shards, indexed by `stable_hash % len`. Each holds
    /// the rank-table entry of its index ([`rank::STORE_SHARDS`]), so
    /// multi-shard paths that acquire by ascending index are checker-clean.
    shards: Arc<[OrderedRwLock<Shard>]>,
    meta: Arc<OrderedMutex<Meta>>,
    inflight: Arc<Inflight>,
    stats: Arc<OrderedMutex<Counters>>,
    capacity: usize,
    /// Flight recorder for claim/wait/publish/evict events; disabled
    /// ([`Tracer::off`]) unless attached via
    /// [`SharedBasisStore::with_tracer`]. Events observe, never decide.
    tracer: Tracer,
}

/// Per-probe best match within one candidate slice: `(candidate index,
/// per-column mappings, total error)`.
type PartialBest = Vec<Option<(usize, HashMap<String, Mapping>, f64)>>;

/// Work accounting of one match scan
/// ([`SharedBasisStore::find_correlated_batch_scan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchScanStats {
    /// (candidate, probe) pairs that ran the full entry-by-entry
    /// [`CorrelationDetector::detect_all`] comparison.
    pub candidates_scanned: u64,
    /// (candidate, probe) pairs the summary index skipped: the bound
    /// proved they could not match at all, or could not beat the best
    /// match already found.
    pub candidates_pruned: u64,
}

/// Wave width of the indexed scan: candidates are bounded and compared in
/// stamp-ordered blocks of this many, and pruning decisions for a wave
/// consult only the best matches of *completed* waves. The width is a
/// constant — never derived from `threads` — so which pairs get pruned is
/// a pure function of the store contents and the probes, making the
/// scanned/pruned accounting identical at every thread count (`threads`
/// only spreads a wave's surviving comparisons across workers).
const MATCH_WAVE: usize = 32;

/// Exhaustive reference scan (the pre-index behaviour): candidates
/// partition across up to `threads` workers, every (candidate, probe)
/// pair is compared, and partial bests merge by `(error, insertion
/// order)`. A zero-error hit is exact — nothing later can beat it, so
/// each worker short-circuits its slice once every probe is exact.
fn scan_exhaustive(
    candidates: &[(&ParamPoint, &Record)],
    probes: &[HashMap<String, Fingerprint>],
    columns: &[String],
    detector: &CorrelationDetector,
    threads: usize,
    stats: &mut MatchScanStats,
) -> PartialBest {
    let scan = |slice: &[(&ParamPoint, &Record)], base: usize| {
        let mut scanned = 0u64;
        let mut best: PartialBest = vec![None; probes.len()];
        for (ci, (_, record)) in slice.iter().enumerate() {
            let mut all_exact = true;
            // analysis:allow(map-iter): `probes` is a slice here — the name collides with a map param elsewhere in this file
            for (pi, probe) in probes.iter().enumerate() {
                if matches!(&best[pi], Some((_, _, err)) if *err == 0.0) {
                    continue;
                }
                all_exact = false;
                scanned += 1;
                if let Some((mappings, err)) =
                    detector.detect_all(&record.fingerprints, probe, columns)
                {
                    let better = match &best[pi] {
                        None => true,
                        Some((_, _, best_err)) => err < *best_err,
                    };
                    if better {
                        best[pi] = Some((base + ci, mappings, err));
                    }
                }
            }
            if all_exact {
                break;
            }
        }
        (best, scanned)
    };

    let workers = threads.max(1).min(candidates.len().max(1));
    let partials: Vec<(PartialBest, u64)> = if workers <= 1 {
        vec![scan(candidates, 0)]
    } else {
        let chunk = candidates.len().div_ceil(workers);
        // lint:allow(thread-spawn): the exhaustive reference scan's scoped
        // fan-out predates the scheduler and must stay schedule-free so the
        // indexed scan can be differentially tested against it.
        std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .enumerate()
                .map(|(i, slice)| scope.spawn(move || scan(slice, i * chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("invariant: probe workers only read shared slices and cannot panic")
                })
                .collect()
        })
    };

    let mut merged: PartialBest = vec![None; probes.len()];
    for (partial, scanned) in partials {
        stats.candidates_scanned += scanned;
        for (pi, slot) in partial.into_iter().enumerate() {
            if let Some((ci, mappings, err)) = slot {
                let better = match &merged[pi] {
                    None => true,
                    // Lexicographic (error, insertion order): ties resolve
                    // to the earliest-inserted source no matter how
                    // candidates were partitioned.
                    Some((best_ci, _, best_err)) => {
                        err < *best_err || (err == *best_err && ci < *best_ci)
                    }
                };
                if better {
                    merged[pi] = Some((ci, mappings, err));
                }
            }
        }
    }
    merged
}

/// Branch-and-bound scan over the summary index. Soundness (the chosen
/// source is bit-identical to [`scan_exhaustive`]'s) rests on two facts:
/// the summary bound never exceeds the error `detect_all` would report
/// (`prophet_fingerprint::index` docs carry the proof), and candidates are
/// walked in stamp order, so any incumbent best predates the candidates
/// being pruned against it — a candidate whose error cannot go *below*
/// the incumbent's loses even on an exact tie, because ties resolve to
/// the earliest stamp.
fn scan_indexed(
    candidates: &[(&ParamPoint, &Record)],
    probes: &[HashMap<String, Fingerprint>],
    columns: &[String],
    detector: &CorrelationDetector,
    threads: usize,
    stats: &mut MatchScanStats,
) -> PartialBest {
    let probe_summaries: Vec<HashMap<String, FingerprintSummary>> =
        // analysis:allow(map-iter): `probes` is a slice here — the name collides with a map param elsewhere in this file
        probes.iter().map(summarize).collect();
    let mut best: PartialBest = vec![None; probes.len()];
    for (wave_idx, wave) in candidates.chunks(MATCH_WAVE).enumerate() {
        if best
            .iter()
            .all(|b| matches!(b, Some((_, _, err)) if *err == 0.0))
        {
            break; // every probe already has an exact match
        }
        let base = wave_idx * MATCH_WAVE;
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        for (offset, (_, record)) in wave.iter().enumerate() {
            let ci = base + offset;
            for (pi, probe_summary) in probe_summaries.iter().enumerate() {
                // A zero-error incumbent prunes every later candidate no
                // matter what its bound comes out to (Infeasible prunes,
                // and any Feasible bound is ≥ 0 = the incumbent's error),
                // so skip the bound computation outright — the accounting
                // is identical.
                if matches!(&best[pi], Some((_, _, err)) if *err == 0.0) {
                    stats.candidates_pruned += 1;
                    continue;
                }
                match bound_all(&record.summaries, probe_summary, columns, detector) {
                    MatchBound::Infeasible => stats.candidates_pruned += 1,
                    MatchBound::Feasible(bound) => match &best[pi] {
                        Some((_, _, incumbent)) if bound >= *incumbent => {
                            stats.candidates_pruned += 1;
                        }
                        _ => jobs.push((ci, pi)),
                    },
                }
            }
        }
        stats.candidates_scanned += jobs.len() as u64;
        // A wave's surviving comparisons are independent: fan out, then
        // merge sequentially in stamp order (strictly-better replacement
        // keeps the earliest stamp on ties, as the exhaustive scan does).
        let detected = parallel_chunks(&jobs, threads, |&(ci, pi)| {
            detector.detect_all(&candidates[ci].1.fingerprints, &probes[pi], columns)
        });
        for (&(ci, pi), result) in jobs.iter().zip(detected) {
            if let Some((mappings, err)) = result {
                let better = match &best[pi] {
                    None => true,
                    Some((_, _, best_err)) => err < *best_err,
                };
                if better {
                    best[pi] = Some((ci, mappings, err));
                }
            }
        }
    }
    best
}

/// Apply `f` to every item, fanning out across up to `threads` scoped
/// workers (contiguous chunks, results in input order). Single-item or
/// single-thread calls run inline with no spawn overhead.
fn parallel_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    // lint:allow(thread-spawn): wave-local fan-out of pure comparisons;
    // runs under the store's read lock where pool chunks must not block.
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                h.join()
                    .expect("invariant: match workers apply a pure fn and cannot panic")
            })
            .collect()
    })
}

// ------------------------------------------------------------- persistence

/// Magic prefix of a basis snapshot ("FuzzyProphet Basis Snapshot").
const SNAPSHOT_MAGIC: [u8; 4] = *b"FPBS";
/// Current snapshot format version.
const SNAPSHOT_VERSION: u16 = 1;

/// Why a basis snapshot could not be produced or restored. Restore
/// validates the *entire* byte stream — header, checksum, structure,
/// capacity — before touching any store state, so a failed restore leaves
/// the store exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the structure it promised, or a field
    /// held a structurally impossible value.
    Truncated,
    /// The leading magic was not `FPBS` — not a basis snapshot at all.
    BadMagic,
    /// The snapshot's format version is not one this build can read.
    UnsupportedVersion(u16),
    /// The trailing FNV-1a checksum did not match the body: the file was
    /// corrupted after it was written.
    ChecksumMismatch,
    /// The snapshot holds more entries than this store's capacity — it was
    /// written by a larger store and restoring it would immediately evict.
    CapacityExceeded {
        /// Entries the snapshot holds.
        entries: usize,
        /// This store's capacity.
        capacity: usize,
    },
    /// Filesystem failure (the underlying `io::Error`, stringified so the
    /// error stays `Clone` + `Eq` like every other `ProphetError` cause).
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated or structurally malformed"),
            SnapshotError::BadMagic => write!(f, "not a basis snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::CapacityExceeded { entries, capacity } => write!(
                f,
                "snapshot holds {entries} entries but the store's capacity is {capacity}"
            ),
            SnapshotError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over `bytes` — the platform-stable hash the snapshot trailer
/// uses (same constants as `ParamPoint::stable_hash`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// One record's bytes, in a fixed field order with name-sorted column
/// maps, so the serialization is a pure function of the record — byte
/// stability is what lets the round-trip tests assert
/// `restore(bytes).snapshot_bytes() == bytes` at any shard count.
fn serialize_record(out: &mut Vec<u8>, point: &ParamPoint, record: &Record) {
    let pairs: Vec<(&str, i64)> = point.iter().collect();
    put_u32(out, pairs.len() as u32);
    for (name, value) in pairs {
        put_str(out, name);
        put_i64(out, value);
    }
    put_u64(out, record.worlds as u64);
    put_u64(out, record.stamp);
    out.push(record.matchable as u8);
    let mut fps: Vec<(&String, &Fingerprint)> = record.fingerprints.iter().collect();
    fps.sort_by(|a, b| a.0.cmp(b.0));
    put_u32(out, fps.len() as u32);
    for (name, fp) in fps {
        put_str(out, name);
        let values = fp.values();
        put_u32(out, values.len() as u32);
        for &v in values {
            put_f64(out, v);
        }
    }
    let mut cols: Vec<(&String, &Vec<f64>)> = record.samples.iter().collect();
    cols.sort_by(|a, b| a.0.cmp(b.0));
    put_u32(out, cols.len() as u32);
    for (name, values) in cols {
        put_str(out, name);
        put_u64(out, values.len() as u64);
        for &v in values {
            put_f64(out, v);
        }
    }
}

/// Bounds-checked little-endian reader over a snapshot body. Every
/// over-run is a [`SnapshotError::Truncated`].
struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or(SnapshotError::Truncated)?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect(
            "invariant: take() returned exactly the requested width",
        )))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect(
            "invariant: take() returned exactly the requested width",
        )))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect(
            "invariant: take() returned exactly the requested width",
        )))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Truncated)
    }
}

/// A fully parsed snapshot record, not yet installed in any store.
struct ParsedRecord {
    point: ParamPoint,
    fingerprints: HashMap<String, Fingerprint>,
    samples: ColumnSamples,
    worlds: usize,
    stamp: u64,
    matchable: bool,
}

fn parse_record(r: &mut SnapshotReader<'_>) -> Result<ParsedRecord, SnapshotError> {
    let npairs = r.u32()? as usize;
    let mut pairs = Vec::with_capacity(npairs.min(64));
    for _ in 0..npairs {
        let name = r.string()?;
        let value = r.i64()?;
        pairs.push((name, value));
    }
    let point = ParamPoint::from_pairs(pairs);
    let worlds = r.u64()? as usize;
    let stamp = r.u64()?;
    let matchable = match r.take(1)?[0] {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Truncated),
    };
    let nfps = r.u32()? as usize;
    let mut fingerprints = HashMap::with_capacity(nfps.min(64));
    for _ in 0..nfps {
        let name = r.string()?;
        let len = r.u32()? as usize;
        let mut values = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            values.push(r.f64()?);
        }
        fingerprints.insert(name, Fingerprint::from_values(values));
    }
    let ncols = r.u32()? as usize;
    let mut samples: ColumnSamples = HashMap::with_capacity(ncols.min(64));
    for _ in 0..ncols {
        let name = r.string()?;
        let len = r.u64()? as usize;
        let mut values = Vec::with_capacity(len.min(65_536));
        for _ in 0..len {
            values.push(r.f64()?);
        }
        samples.insert(name, values);
    }
    Ok(ParsedRecord {
        point,
        fingerprints,
        samples,
        worlds,
        stamp,
        matchable,
    })
}

impl SharedBasisStore {
    /// Create an empty store holding at most `capacity` entries, with the
    /// default shard count ([`DEFAULT_SHARDS`]).
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a store that cannot hold anything is a
    /// configuration bug).
    pub fn new(capacity: usize) -> Self {
        SharedBasisStore::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Create an empty store with an explicit shard count. More shards
    /// means less lock contention between jobs touching disjoint points;
    /// answers, eviction order, scan accounting, and snapshot bytes are
    /// identical at every shard count (see the module docs).
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `shards` is outside
    /// `1..=`[`MAX_SHARDS`] (each shard needs its own rank-table entry).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "basis store capacity must be positive");
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "basis store shard count must be in 1..={MAX_SHARDS} (got {shards})"
        );
        let shard_vec: Vec<OrderedRwLock<Shard>> = (0..shards)
            .map(|i| OrderedRwLock::new(rank::STORE_SHARDS[i], Shard::default()))
            .collect();
        SharedBasisStore {
            shards: shard_vec.into(),
            meta: Arc::new(OrderedMutex::new(rank::STORE_META, Meta::default())),
            inflight: Arc::new(Inflight::default()),
            stats: Arc::new(OrderedMutex::new(rank::STORE_STATS, Counters::default())),
            capacity,
            tracer: Tracer::off(),
        }
    }

    /// Attach a flight recorder: claim, in-flight wait, publish, and
    /// eviction events are recorded against it (plus the store-wait
    /// latency histogram). The service facade attaches its scheduler's
    /// tracer so store and scheduler events share one timeline.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached flight recorder (disabled unless
    /// [`SharedBasisStore::with_tracer`] was used).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Maximum number of entries before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards the entry table is split across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard holds `point`: `stable_hash % shard_count`. The hash is
    /// platform-stable (FNV-1a), so a point's shard is reproducible — the
    /// shard-tagged `StoreClaim`/`StoreEvict` trace events mean the same
    /// thing on every machine.
    pub fn shard_of(&self, point: &ParamPoint) -> usize {
        (point.stable_hash() % self.shards.len() as u64) as usize
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.meta.lock().index.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (forces cold start) and reset hit accounting.
    ///
    /// In-flight simulations are cancelled, not orphaned: every pending
    /// slot is detached and its waiters woken, so they re-claim and
    /// re-simulate against the now-empty store, and the interrupted owners'
    /// results are discarded on [`InflightGuard::complete`] instead of
    /// resurrecting pre-clear state.
    ///
    /// Cancelling and wiping happen under the in-flight table lock that
    /// [`InflightGuard::complete`] publishes under, so a racing completion
    /// is either fully before this clear (its entry is wiped with the rest)
    /// or fully after (its slot is already cancelled and its results are
    /// discarded) — never a stale entry in a "cleared" store.
    pub fn clear(&self) {
        let mut slots = self.inflight.slots.lock();
        // analysis:allow(map-iter): every drained slot gets the same cancel + release — visit order is unobservable
        for (point, slot) in slots.drain() {
            slot.cancel();
            // The detached owner's claim ends here: claimed → released
            // (its eventual `complete` observes the cancel and discards).
            self.inflight.ledger.on_released(&point);
        }
        {
            let mut meta = self.meta.lock();
            let mut guards: Vec<OrderedWriteGuard<'_, Shard>> =
                self.shards.iter().map(|s| s.write()).collect();
            for guard in guards.iter_mut() {
                guard.entries.clear();
                guard.order.clear();
            }
            meta.index.clear();
            meta.matchable_queue.clear();
            meta.unmatchable_queue.clear();
            // next_stamp is preserved: stamps stay globally unique across a
            // clear, so later tie-breaks never collide with pre-clear ones.
        }
        *self.stats.lock() = Counters::default();
        drop(slots);
    }

    /// `(hits, misses)` of correlated lookups so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        let counters = self.stats.lock();
        (counters.hits, counters.misses)
    }

    /// Coherent snapshot of all cross-session counters: every field comes
    /// from one critical section over the counter ledger (plus the entry
    /// count under the meta lock held alongside it), so the fields can
    /// never be mutually torn the way independent relaxed loads were.
    pub fn stats_snapshot(&self) -> StoreStatsSnapshot {
        let meta = self.meta.lock();
        let counters = self.stats.lock();
        StoreStatsSnapshot {
            hits: counters.hits,
            misses: counters.misses,
            inflight_waits: counters.inflight_waits,
            evictions: counters.evictions,
            entries: meta.index.len() as u64,
        }
    }

    /// Number of points currently claimed by in-flight simulations.
    pub fn inflight_len(&self) -> usize {
        self.inflight.slots.lock().len()
    }

    /// True if `other` is a handle onto the same underlying store.
    pub fn shares_storage_with(&self, other: &SharedBasisStore) -> bool {
        Arc::ptr_eq(&self.meta, &other.meta)
    }

    /// Exact lookup: stored samples for `point`, provided they are backed by
    /// at least `min_worlds` worlds. Touches only `point`'s shard.
    pub fn get_exact(&self, point: &ParamPoint, min_worlds: usize) -> Option<Arc<ColumnSamples>> {
        self.shards[self.shard_of(point)]
            .read()
            .entries
            .get(point)
            .filter(|e| e.worlds >= min_worlds)
            .map(|e| Arc::clone(&e.samples))
    }

    /// Claim `point` for evaluation, deduplicating concurrent work: at most
    /// one session owns a point's simulation at a time.
    ///
    /// * [`TryClaim::Ready`] — already stored with `min_worlds`+ worlds.
    /// * [`TryClaim::Owner`] — the caller must simulate and publish through
    ///   the returned [`InflightGuard`].
    /// * [`TryClaim::Pending`] — another session owns it; block on the
    ///   [`WaitHandle`] to reuse its result.
    pub fn try_claim(&self, point: &ParamPoint, min_worlds: usize) -> TryClaim {
        let shard = self.shard_of(point);
        self.tracer.instant(
            TraceEventKind::StoreClaim {
                shard: shard as u16,
            },
            NO_JOB,
            NO_CHUNK,
        );
        let mut slots = self.inflight.slots.lock();
        // Exact check under the in-flight lock so a concurrent complete()
        // cannot publish between the store check and slot registration.
        {
            let guard = self.shards[shard].read();
            if let Some(e) = guard.entries.get(point) {
                if e.worlds >= min_worlds {
                    return TryClaim::Ready {
                        samples: Arc::clone(&e.samples),
                        worlds: e.worlds,
                    };
                }
            }
        }
        match slots.entry(point.clone()) {
            Entry::Occupied(e) => TryClaim::Pending(WaitHandle {
                slot: Arc::clone(e.get()),
                stats: Arc::clone(&self.stats),
                tracer: self.tracer.clone(),
            }),
            Entry::Vacant(v) => {
                let slot = Arc::new(PendingSlot::new());
                v.insert(Arc::clone(&slot));
                self.inflight.ledger.on_claimed(point);
                TryClaim::Owner(InflightGuard {
                    store: self.clone(),
                    point: point.clone(),
                    slot,
                    completed: false,
                })
            }
        }
    }

    /// Insert (or replace) the entry for `point`. `matchable` marks fully
    /// simulated entries that may serve as mapping sources; their
    /// fingerprint summaries are computed here.
    ///
    /// The insert holds the meta lock across the shard acquisitions: stamp
    /// allocation, the global eviction decision, and both shard mutations
    /// (victim removal + entry insert) commit as one unit. Eviction is
    /// O(log n): the victim is the head of the global stamp-ordered
    /// unmatchable queue (else the matchable queue) — no entry-table scan.
    /// The victim and target shard write locks are taken in ascending
    /// shard-index order (equal ranks never coexist) and *both* before any
    /// mutation, so the all-shard read scan can never observe an insert's
    /// partial state.
    pub fn insert(
        &self,
        point: ParamPoint,
        fingerprints: HashMap<String, Fingerprint>,
        samples: Arc<ColumnSamples>,
        worlds: usize,
        matchable: bool,
    ) {
        // Summarize outside the locks — pure function of the inputs.
        let summaries = if matchable {
            Arc::new(summarize(&fingerprints))
        } else {
            Arc::new(HashMap::new())
        };
        let target = self.shard_of(&point);
        let mut evicted_shard: Option<u16> = None;
        {
            let mut meta = self.meta.lock();
            meta.next_stamp += 1;
            let stamp = meta.next_stamp;
            // Global eviction decision: head of the stamp-ordered queues,
            // unmatchable (mapped) entries first. Replacements never evict.
            let mut victim: Option<(u64, ParamPoint, bool)> = None;
            if meta.index.len() >= self.capacity && !meta.index.contains_key(&point) {
                victim = meta
                    .unmatchable_queue
                    .first_key_value()
                    .map(|(s, p)| (*s, p.clone(), false))
                    .or_else(|| {
                        meta.matchable_queue
                            .first_key_value()
                            .map(|(s, p)| (*s, p.clone(), true))
                    });
                if let Some((vstamp, vpoint, vmatchable)) = &victim {
                    if *vmatchable {
                        meta.matchable_queue.remove(vstamp);
                    } else {
                        meta.unmatchable_queue.remove(vstamp);
                    }
                    meta.index.remove(vpoint);
                }
            }
            if let Some((old_stamp, old_matchable)) =
                meta.index.insert(point.clone(), (stamp, matchable))
            {
                if old_matchable {
                    meta.matchable_queue.remove(&old_stamp);
                } else {
                    meta.unmatchable_queue.remove(&old_stamp);
                }
            }
            if matchable {
                meta.matchable_queue.insert(stamp, point.clone());
            } else {
                meta.unmatchable_queue.insert(stamp, point.clone());
            }

            // Shard phase: acquire every needed write lock (ascending shard
            // index = ascending rank) before mutating anything.
            let victim_shard = victim.as_ref().map(|(_, p, _)| self.shard_of(p));
            let (mut tguard, mut vguard) = match victim_shard {
                None => (self.shards[target].write(), None),
                // analysis:allow(lock-order): match arms are exclusive — the linear walk wrongly carries the arm above
                Some(v) if v == target => (self.shards[target].write(), None),
                Some(v) if v < target => {
                    // analysis:allow(lock-order): match arms are exclusive — nothing from the arms above is held here
                    let vg = self.shards[v].write();
                    // analysis:allow(lock-order): second shard acquired ascending — the arm guard proves v < target
                    (self.shards[target].write(), Some(vg))
                }
                Some(v) => {
                    // analysis:allow(lock-order): match arms are exclusive — nothing from the arms above is held here
                    let tg = self.shards[target].write();
                    // analysis:allow(lock-order): second shard acquired ascending — this arm implies target < v
                    (tg, Some(self.shards[v].write()))
                }
            };
            if let Some((vstamp, vpoint, vmatchable)) = &victim {
                let guard = vguard.as_mut().unwrap_or(&mut tguard);
                guard.entries.remove(vpoint);
                if *vmatchable {
                    guard.order.remove(vstamp);
                }
                evicted_shard = Some(self.shard_of(vpoint) as u16);
            }
            let replaced = tguard.entries.insert(
                point.clone(),
                Record {
                    fingerprints: Arc::new(fingerprints),
                    summaries,
                    samples,
                    worlds,
                    stamp,
                    matchable,
                },
            );
            if let Some(old) = replaced {
                if old.matchable {
                    tguard.order.remove(&old.stamp);
                }
            }
            if matchable {
                tguard.order.insert(stamp, point);
            }
        }
        if let Some(shard) = evicted_shard {
            self.tracer
                .instant(TraceEventKind::StoreEvict { shard }, NO_JOB, NO_CHUNK);
            self.stats.lock().evictions += 1;
        }
    }

    /// Search the store for a matchable entry where *every* column in
    /// `columns` has a detectable mapping onto the probe fingerprints.
    /// Returns the best (lowest total error) candidate. This is a batch of
    /// one through the summary-indexed scan — the maintained candidate
    /// list and bounds mean single-probe online adjustments pay no
    /// snapshot-and-sort and prune exactly like batched sweeps do.
    pub fn find_correlated(
        &self,
        probes: &HashMap<String, Fingerprint>,
        columns: &[String],
        detector: &CorrelationDetector,
    ) -> Option<BasisHit> {
        self.find_correlated_batch(std::slice::from_ref(probes), columns, detector, 1)
            .pop()
            .flatten()
    }

    /// Batched correlated lookup through the summary index; see
    /// [`SharedBasisStore::find_correlated_batch_scan`], which this
    /// forwards to with `use_index: true`, discarding the scan accounting.
    pub fn find_correlated_batch(
        &self,
        probes: &[HashMap<String, Fingerprint>],
        columns: &[String],
        detector: &CorrelationDetector,
        threads: usize,
    ) -> Vec<Option<BasisHit>> {
        self.find_correlated_batch_scan(probes, columns, detector, threads, true)
            .0
    }

    /// Batched correlated lookup: probe many fingerprint sets against the
    /// matchable entries in one scan. Result `i` is the best hit for
    /// `probes[i]`.
    ///
    /// The scan takes every shard's read lock (ascending) and merges the
    /// per-shard stamp-ordered candidate lists into one list in global
    /// insertion-stamp order — the same candidate sequence a single-shard
    /// store walks, so wave boundaries, pruning, chosen sources, and the
    /// [`MatchScanStats`] accounting are independent of the shard count.
    /// With `use_index` the scan is branch-and-bound over summary bounds
    /// (see the module docs): only candidates whose bound can still beat
    /// the best match of completed waves run
    /// [`CorrelationDetector::detect_all`], and the surviving comparisons
    /// of each wave fan out across up to `threads` workers. Without it,
    /// candidates partition across workers and every pair is compared (the
    /// exhaustive reference scan). Both paths pick the best candidate by
    /// `(total error, insertion order)`, so the chosen source is identical
    /// between them and independent of the thread count; with the index,
    /// the returned [`MatchScanStats`] is thread-independent too.
    pub fn find_correlated_batch_scan(
        &self,
        probes: &[HashMap<String, Fingerprint>],
        columns: &[String],
        detector: &CorrelationDetector,
        threads: usize,
        use_index: bool,
    ) -> (Vec<Option<BasisHit>>, MatchScanStats) {
        if probes.is_empty() {
            return (Vec::new(), MatchScanStats::default());
        }
        let guards: Vec<OrderedReadGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.read()).collect();
        // Merge the shards' stamp-ordered candidate lists. Stamps are
        // globally unique, so sorting by stamp reproduces the exact global
        // insertion order a 1-shard store maintains natively.
        let mut stamped: Vec<(u64, &ParamPoint, &Record)> = Vec::new();
        for guard in &guards {
            for (stamp, point) in &guard.order {
                if let Some(record) = guard.entries.get(point) {
                    if !record.fingerprints.is_empty() {
                        stamped.push((*stamp, point, record));
                    }
                }
            }
        }
        stamped.sort_unstable_by_key(|(stamp, _, _)| *stamp);
        let candidates: Vec<(&ParamPoint, &Record)> =
            stamped.iter().map(|(_, p, r)| (*p, *r)).collect();

        let mut stats = MatchScanStats::default();
        let best = if use_index {
            scan_indexed(&candidates, probes, columns, detector, threads, &mut stats)
        } else {
            scan_exhaustive(&candidates, probes, columns, detector, threads, &mut stats)
        };

        let mut hit_count = 0u64;
        let mut miss_count = 0u64;
        let results: Vec<Option<BasisHit>> = best
            .into_iter()
            .map(|slot| match slot {
                Some((ci, mappings, _)) => {
                    hit_count += 1;
                    let (point, record) = candidates[ci];
                    Some(BasisHit {
                        source: point.clone(),
                        mappings,
                        samples: Arc::clone(&record.samples),
                        worlds: record.worlds,
                    })
                }
                None => {
                    miss_count += 1;
                    None
                }
            })
            .collect();
        {
            // One counter-ledger bump for the whole batch (rank 67 sits
            // above the shard ranks, so this is legal under the guards).
            let mut counters = self.stats.lock();
            counters.hits += hit_count;
            counters.misses += miss_count;
        }
        drop(guards);
        (results, stats)
    }

    // --------------------------------------------------- snapshot / restore

    /// Serialize every record in global stamp order. The byte stream is a
    /// pure function of the store *contents* — never of the shard count or
    /// insertion interleaving — which the differential tests pin by
    /// comparing bytes across shard counts.
    fn snapshot_with_count(&self) -> (Vec<u8>, usize) {
        let meta = self.meta.lock();
        let guards: Vec<OrderedReadGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.read()).collect();
        let mut stamped: Vec<(u64, &ParamPoint)> =
            meta.index.iter().map(|(p, (s, _))| (*s, p)).collect();
        stamped.sort_unstable_by_key(|(stamp, _)| *stamp);
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        put_u64(&mut out, meta.next_stamp);
        put_u64(&mut out, stamped.len() as u64);
        for (_, point) in &stamped {
            let record = guards[self.shard_of(point)]
                .entries
                .get(*point)
                .expect("invariant: every meta index entry has a shard record");
            serialize_record(&mut out, point, record);
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        (out, stamped.len())
    }

    /// Serialize the store — records (samples, fingerprints, stamps,
    /// matchability), the stamp counter, a version header, and a trailing
    /// checksum — into a byte vector [`SharedBasisStore::restore_bytes`]
    /// accepts. Summaries are derived data and are *not* serialized; a
    /// restore recomputes them. See `docs/CONCURRENCY.md` for the format.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_with_count().0
    }

    /// Replace this store's contents with a snapshot's. Returns the number
    /// of restored entries.
    ///
    /// The whole byte stream is validated — header, checksum, record
    /// structure, capacity — *before* any store state changes, so a failed
    /// restore leaves the store untouched. A successful restore behaves
    /// like [`SharedBasisStore::clear`] followed by replaying the
    /// snapshot's records with their original stamps: in-flight claims are
    /// cancelled (waiters re-claim), counters reset, and the stamp counter
    /// continues from the snapshot's, so post-restore inserts, evictions,
    /// and match tie-breaks are bit-identical to the store that wrote it.
    pub fn restore_bytes(&self, bytes: &[u8]) -> Result<usize, SnapshotError> {
        const HEADER: usize = 4 + 2 + 8 + 8; // magic + version + next_stamp + count
        const FOOTER: usize = 8; // FNV-1a checksum
        if bytes.len() < HEADER + FOOTER {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let body = &bytes[..bytes.len() - FOOTER];
        let stored_sum = u64::from_le_bytes(
            bytes[bytes.len() - FOOTER..]
                .try_into()
                .expect("invariant: FOOTER-wide slice converts to its array"),
        );
        if fnv1a(body) != stored_sum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut reader = SnapshotReader { buf: body, pos: 6 };
        let next_stamp = reader.u64()?;
        let count = reader.u64()? as usize;
        let mut parsed = Vec::with_capacity(count.min(65_536));
        for _ in 0..count {
            parsed.push(parse_record(&mut reader)?);
        }
        if reader.pos != body.len() {
            return Err(SnapshotError::Truncated);
        }
        if count > self.capacity {
            return Err(SnapshotError::CapacityExceeded {
                entries: count,
                capacity: self.capacity,
            });
        }
        // Summaries are derived: recompute rather than trust the bytes.
        let installed: Vec<(ParamPoint, Record)> = parsed
            .into_iter()
            .map(|r| {
                let summaries = if r.matchable {
                    Arc::new(summarize(&r.fingerprints))
                } else {
                    Arc::new(HashMap::new())
                };
                (
                    r.point,
                    Record {
                        fingerprints: Arc::new(r.fingerprints),
                        summaries,
                        samples: Arc::new(r.samples),
                        worlds: r.worlds,
                        stamp: r.stamp,
                        matchable: r.matchable,
                    },
                )
            })
            .collect();

        // Swap in, following clear()'s protocol: cancel in-flight work
        // under the table lock, then replace contents under meta + every
        // shard write lock so no scan observes a half-restored store.
        let mut slots = self.inflight.slots.lock();
        // analysis:allow(map-iter): every drained slot gets the same cancel + release — visit order is unobservable
        for (point, slot) in slots.drain() {
            slot.cancel();
            self.inflight.ledger.on_released(&point);
        }
        {
            let mut meta = self.meta.lock();
            let mut guards: Vec<OrderedWriteGuard<'_, Shard>> =
                self.shards.iter().map(|s| s.write()).collect();
            for guard in guards.iter_mut() {
                guard.entries.clear();
                guard.order.clear();
            }
            meta.index.clear();
            meta.matchable_queue.clear();
            meta.unmatchable_queue.clear();
            meta.next_stamp = next_stamp;
            for (point, record) in installed {
                let shard = self.shard_of(&point);
                meta.index
                    .insert(point.clone(), (record.stamp, record.matchable));
                if record.matchable {
                    meta.matchable_queue.insert(record.stamp, point.clone());
                    guards[shard].order.insert(record.stamp, point.clone());
                } else {
                    meta.unmatchable_queue.insert(record.stamp, point.clone());
                }
                guards[shard].entries.insert(point, record);
            }
        }
        *self.stats.lock() = Counters::default();
        drop(slots);
        Ok(count)
    }

    /// Write a snapshot to `path` (see
    /// [`SharedBasisStore::snapshot_bytes`]). Returns the number of
    /// serialized entries.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<usize, SnapshotError> {
        let (bytes, count) = self.snapshot_with_count();
        std::fs::write(path, bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Ok(count)
    }

    /// Read and restore a snapshot from `path` (see
    /// [`SharedBasisStore::restore_bytes`]). Returns the number of
    /// restored entries.
    pub fn load_from(&self, path: impl AsRef<std::path::Path>) -> Result<usize, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        self.restore_bytes(&bytes)
    }
}

impl std::fmt::Debug for SharedBasisStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats_snapshot();
        f.debug_struct("SharedBasisStore")
            .field("len", &stats.entries)
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("inflight", &self.inflight_len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("inflight_waits", &stats.inflight_waits)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, v: i64) -> ParamPoint {
        ParamPoint::from_pairs([(name.to_owned(), v)])
    }

    fn fp(values: &[f64]) -> Fingerprint {
        Fingerprint::from_values(values.to_vec())
    }

    fn samples(v: f64) -> Arc<ColumnSamples> {
        Arc::new(HashMap::from([("y".to_owned(), vec![v, v + 1.0])]))
    }

    /// Capacity-4 store fed 12 mixed-matchability inserts: 8 evictions of
    /// churn, identical contents expected at every shard count.
    fn churn_store(shards: usize) -> SharedBasisStore {
        let s = SharedBasisStore::with_shards(4, shards);
        for i in 0..12i64 {
            let vals: Vec<f64> = (0..4).map(|k| (i * 3 + k) as f64).collect();
            s.insert(
                point("p", i),
                HashMap::from([("y".to_owned(), fp(&vals))]),
                samples(i as f64),
                10,
                i % 3 != 0,
            );
        }
        s
    }

    #[test]
    fn exact_lookup_respects_min_worlds() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        s.insert(p.clone(), HashMap::new(), samples(1.0), 50, true);
        assert!(s.get_exact(&p, 50).is_some());
        assert!(s.get_exact(&p, 51).is_none(), "too few worlds stored");
        assert!(s.get_exact(&point("x", 2), 1).is_none());
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedBasisStore::new(8);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
        a.insert(point("x", 1), HashMap::new(), samples(0.0), 10, true);
        assert_eq!(
            b.len(),
            1,
            "insert through one handle is visible through the other"
        );
        b.clear();
        assert!(a.is_empty());
        assert!(!a.shares_storage_with(&SharedBasisStore::new(8)));
    }

    #[test]
    fn correlated_lookup_finds_offset_related_entry() {
        let s = SharedBasisStore::new(8);
        let base = [1.0, 2.0, 3.0, 5.0];
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(10.0),
            100,
            true,
        );
        let shifted: Vec<f64> = base.iter().map(|v| v + 7.0).collect();
        let probes = HashMap::from([("y".to_owned(), fp(&shifted))]);
        let hit = s
            .find_correlated(&probes, &["y".to_owned()], &CorrelationDetector::default())
            .expect("offset relation must match");
        assert_eq!(hit.source, point("x", 1));
        assert_eq!(hit.worlds, 100);
        assert_eq!(hit.mappings["y"], Mapping::Offset(7.0));
        assert_eq!(s.hit_stats(), (1, 0));
    }

    #[test]
    fn unmatchable_entries_are_skipped() {
        let s = SharedBasisStore::new(8);
        let base = [1.0, 2.0, 3.0, 5.0];
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(0.0),
            100,
            false, // mapped entry: not a matching source
        );
        let probes = HashMap::from([("y".to_owned(), fp(&base))]);
        assert!(s
            .find_correlated(&probes, &["y".to_owned()], &CorrelationDetector::default())
            .is_none());
        assert_eq!(s.hit_stats(), (0, 1));
    }

    #[test]
    fn batch_lookup_matches_per_probe_and_prefers_earliest_exact_source() {
        let s = SharedBasisStore::new(8);
        let base = [1.0, 2.0, 3.0, 5.0];
        // Two identical sources: ties must resolve to the first inserted.
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(1.0),
            100,
            true,
        );
        s.insert(
            point("x", 2),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(2.0),
            100,
            true,
        );
        let shifted: Vec<f64> = base.iter().map(|v| v + 7.0).collect();
        let unrelated = [0.3, 0.1, 0.4, 0.1];
        let probes = vec![
            HashMap::from([("y".to_owned(), fp(&base))]),
            HashMap::from([("y".to_owned(), fp(&shifted))]),
            HashMap::from([("y".to_owned(), fp(&unrelated))]),
        ];
        for threads in [1, 4] {
            let hits = s.find_correlated_batch(
                &probes,
                &["y".to_owned()],
                &CorrelationDetector::default(),
                threads,
            );
            assert_eq!(hits.len(), 3);
            let h0 = hits[0].as_ref().expect("identity probe hits");
            assert_eq!(h0.source, point("x", 1), "earliest exact source wins");
            assert_eq!(h0.mappings["y"], Mapping::Identity);
            let h1 = hits[1].as_ref().expect("offset probe hits");
            assert_eq!(h1.mappings["y"], Mapping::Offset(7.0));
            assert!(hits[2].is_none(), "unrelated probe misses");
        }
    }

    #[test]
    fn try_claim_dedupes_concurrent_simulations() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        let TryClaim::Owner(guard) = s.try_claim(&p, 10) else {
            panic!("first claim on a cold point must own it");
        };
        assert_eq!(s.inflight_len(), 1);
        let TryClaim::Pending(handle) = s.try_claim(&p, 10) else {
            panic!("second claim must observe the in-flight owner");
        };
        let waiter = std::thread::spawn(move || handle.wait());
        assert!(guard.complete(HashMap::new(), samples(3.0), 10, true));
        let (got, worlds) = waiter.join().unwrap().expect("published, not cancelled");
        assert_eq!(got["y"], vec![3.0, 4.0]);
        assert_eq!(worlds, 10);
        assert_eq!(s.inflight_len(), 0);
        assert_eq!(s.stats_snapshot().inflight_waits, 1);
        // Published entry is now an exact hit for later claims.
        assert!(matches!(s.try_claim(&p, 10), TryClaim::Ready { .. }));
        assert!(
            matches!(s.try_claim(&p, 11), TryClaim::Owner(_)),
            "too few stored worlds re-opens the claim"
        );
    }

    #[test]
    fn dropped_guard_cancels_waiters_so_they_reclaim() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        let TryClaim::Owner(guard) = s.try_claim(&p, 10) else {
            panic!("expected owner");
        };
        let TryClaim::Pending(handle) = s.try_claim(&p, 10) else {
            panic!("expected pending");
        };
        drop(guard); // owner failed before publishing
        assert!(handle.wait().is_none(), "waiters must not block forever");
        assert!(
            matches!(s.try_claim(&p, 10), TryClaim::Owner(_)),
            "slot released: the next claimant owns the retry"
        );
    }

    #[test]
    fn clear_cancels_inflight_and_discards_stale_completion() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        let TryClaim::Owner(guard) = s.try_claim(&p, 10) else {
            panic!("expected owner");
        };
        let TryClaim::Pending(handle) = s.try_claim(&p, 10) else {
            panic!("expected pending");
        };
        s.clear();
        assert_eq!(s.inflight_len(), 0, "clear detaches pending slots");
        assert!(
            handle.wait().is_none(),
            "clear wakes waiters to re-simulate"
        );
        assert!(
            !guard.complete(HashMap::new(), samples(9.0), 10, true),
            "completion after clear reports the discard"
        );
        assert!(
            s.get_exact(&p, 1).is_none(),
            "pre-clear results must not resurrect"
        );
        // The store is fully usable again.
        let TryClaim::Owner(fresh) = s.try_claim(&p, 10) else {
            panic!("expected fresh owner after clear");
        };
        assert!(fresh.complete(HashMap::new(), samples(1.0), 10, true));
        assert!(s.get_exact(&p, 10).is_some());
    }

    #[test]
    fn eviction_never_drops_a_pending_inflight_entry() {
        // Capacity 1: the pending point is claimed, then unrelated inserts
        // churn the bounded table. The waiter must still receive the
        // published samples — the in-flight hand-off bypasses the entries.
        let s = SharedBasisStore::new(1);
        let p = point("x", 1);
        let TryClaim::Owner(guard) = s.try_claim(&p, 4) else {
            panic!("expected owner");
        };
        let TryClaim::Pending(handle) = s.try_claim(&p, 4) else {
            panic!("expected pending");
        };
        s.insert(point("x", 2), HashMap::new(), samples(2.0), 4, true);
        s.insert(point("x", 3), HashMap::new(), samples(3.0), 4, true);
        assert_eq!(s.len(), 1, "capacity bound holds while a claim is open");
        assert_eq!(s.inflight_len(), 1, "churn cannot evict the claim");
        assert!(guard.complete(HashMap::new(), samples(7.0), 4, true));
        let (got, _) = handle.wait().expect("waiter survives eviction churn");
        assert_eq!(got["y"], vec![7.0, 8.0]);
    }

    #[test]
    fn eviction_prefers_unmatchable_entries() {
        let s = SharedBasisStore::new(2);
        s.insert(point("x", 1), HashMap::new(), samples(0.0), 10, true);
        s.insert(point("x", 2), HashMap::new(), samples(0.0), 10, false);
        s.insert(point("x", 3), HashMap::new(), samples(0.0), 10, true);
        assert_eq!(s.len(), 2);
        assert!(
            s.get_exact(&point("x", 1), 1).is_some(),
            "simulated source survives"
        );
        assert!(
            s.get_exact(&point("x", 2), 1).is_none(),
            "mapped entry evicted first"
        );
        assert!(s.get_exact(&point("x", 3), 1).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SharedBasisStore::new(0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn oversized_shard_count_panics() {
        let _ = SharedBasisStore::with_shards(8, MAX_SHARDS + 1);
    }

    /// The tentpole differential: shard counts {1, 4, 16} produce
    /// bit-identical answers, chosen sources, samples, scanned/pruned
    /// accounting, eviction outcomes, counters, and snapshot bytes, at
    /// both thread counts and through both scan paths.
    #[test]
    fn shard_counts_are_bit_identical() {
        let detector = CorrelationDetector::default();
        let columns = ["y".to_owned()];
        let reference = churn_store(1);
        let ref_bytes = reference.snapshot_bytes();
        let ref_snap = reference.stats_snapshot();
        assert_eq!(ref_snap.entries, 4);
        assert_eq!(ref_snap.evictions, 8);
        let mut probes: Vec<HashMap<String, Fingerprint>> = (0..12i64)
            .map(|i| {
                let vals: Vec<f64> = (0..4).map(|k| (i * 3 + k) as f64 + 0.5).collect();
                HashMap::from([("y".to_owned(), fp(&vals))])
            })
            .collect();
        probes.push(HashMap::from([(
            "y".to_owned(),
            fp(&[0.3, 0.1, 0.4, 0.15]),
        )]));
        let (ref_hits, ref_stats) =
            reference.find_correlated_batch_scan(&probes, &columns, &detector, 1, true);
        for shards in [4, 16] {
            let s = churn_store(shards);
            assert_eq!(
                s.snapshot_bytes(),
                ref_bytes,
                "{shards}-shard snapshot bytes diverge from single-shard"
            );
            assert_eq!(s.stats_snapshot(), ref_snap, "{shards}-shard counters");
            for threads in [1, 8] {
                for use_index in [true, false] {
                    let (hits, stats) = s.find_correlated_batch_scan(
                        &probes, &columns, &detector, threads, use_index,
                    );
                    assert_eq!(hits.len(), ref_hits.len());
                    for (pi, (h, r)) in hits.iter().zip(&ref_hits).enumerate() {
                        match (h, r) {
                            (None, None) => {}
                            (Some(h), Some(r)) => {
                                assert_eq!(
                                    h.source, r.source,
                                    "probe {pi} source ({shards} shards, {threads} threads, index={use_index})"
                                );
                                assert_eq!(h.mappings, r.mappings, "probe {pi} mappings");
                                assert_eq!(*h.samples, *r.samples, "probe {pi} samples");
                                assert_eq!(h.worlds, r.worlds);
                            }
                            _ => panic!(
                                "probe {pi} hit/miss divergence at {shards} shards, {threads} threads"
                            ),
                        }
                    }
                    if use_index {
                        assert_eq!(
                            stats, ref_stats,
                            "scan accounting ({shards} shards, {threads} threads)"
                        );
                    }
                }
            }
        }
    }

    /// Eviction comes off the global stamp-ordered queues — oldest
    /// unmatchable first, then oldest matchable — and is counted.
    #[test]
    fn eviction_uses_stamp_order_and_counts() {
        let s = SharedBasisStore::new(2);
        s.insert(point("x", 1), HashMap::new(), samples(0.0), 10, true);
        s.insert(point("x", 2), HashMap::new(), samples(0.0), 10, false);
        s.insert(point("x", 3), HashMap::new(), samples(0.0), 10, true); // evicts x2
        s.insert(point("x", 4), HashMap::new(), samples(0.0), 10, true); // evicts x1
        let snap = s.stats_snapshot();
        assert_eq!(snap.evictions, 2);
        assert_eq!(snap.entries, 2);
        assert!(
            s.get_exact(&point("x", 1), 1).is_none(),
            "oldest matchable evicted"
        );
        assert!(
            s.get_exact(&point("x", 2), 1).is_none(),
            "unmatchable evicted first"
        );
        assert!(s.get_exact(&point("x", 3), 1).is_some());
        assert!(s.get_exact(&point("x", 4), 1).is_some());
    }

    /// Re-inserting a stored point is a replacement, never an eviction,
    /// and refreshes the entry's stamp (it becomes the newest).
    #[test]
    fn replacement_does_not_evict_and_refreshes_stamp() {
        let s = SharedBasisStore::new(2);
        s.insert(point("x", 1), HashMap::new(), samples(1.0), 10, true);
        s.insert(point("x", 2), HashMap::new(), samples(2.0), 10, true);
        s.insert(point("x", 1), HashMap::new(), samples(9.0), 20, true);
        assert_eq!(
            s.stats_snapshot().evictions,
            0,
            "replacement is not eviction"
        );
        assert_eq!(s.len(), 2);
        // x1's stamp was refreshed, so the next eviction takes x2.
        s.insert(point("x", 3), HashMap::new(), samples(3.0), 10, true);
        assert!(s.get_exact(&point("x", 2), 1).is_none());
        assert!(
            s.get_exact(&point("x", 1), 20).is_some(),
            "refreshed entry survives"
        );
    }

    #[test]
    fn snapshot_round_trips_under_eviction_churn() {
        let src = churn_store(8);
        let bytes = src.snapshot_bytes();
        let dst = SharedBasisStore::with_shards(4, 2);
        assert_eq!(dst.restore_bytes(&bytes), Ok(4));
        assert_eq!(
            dst.snapshot_bytes(),
            bytes,
            "snapshot of a restore is byte-identical"
        );
        assert_eq!(dst.len(), 4);
        let snap = dst.stats_snapshot();
        assert_eq!(
            (snap.hits, snap.misses, snap.evictions, snap.inflight_waits),
            (0, 0, 0, 0),
            "restore resets counters"
        );
        // The restored store continues the stamp stream: the next insert
        // evicts the same victim the source store evicts.
        src.insert(point("q", 1), HashMap::new(), samples(0.5), 10, false);
        dst.insert(point("q", 1), HashMap::new(), samples(0.5), 10, false);
        assert_eq!(
            dst.snapshot_bytes(),
            src.snapshot_bytes(),
            "post-restore eviction and stamping track the source store"
        );
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let src = SharedBasisStore::new(4);
        src.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&[1.0, 2.0, 3.0]))]),
            samples(1.0),
            8,
            true,
        );
        src.insert(point("x", 2), HashMap::new(), samples(2.0), 8, false);
        let good = src.snapshot_bytes();

        let fresh = SharedBasisStore::new(4);
        assert_eq!(
            fresh.restore_bytes(&good[..10]),
            Err(SnapshotError::Truncated)
        );
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            fresh.restore_bytes(&bad_magic),
            Err(SnapshotError::BadMagic)
        );
        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            fresh.restore_bytes(&bad_version),
            Err(SnapshotError::UnsupportedVersion(9))
        );
        let mut flipped = good.clone();
        let mid = good.len() / 2;
        flipped[mid] ^= 0x40;
        assert_eq!(
            fresh.restore_bytes(&flipped),
            Err(SnapshotError::ChecksumMismatch)
        );
        // A structurally short body behind a *recomputed* (valid) checksum
        // still rejects: structure is validated, not just integrity.
        let mut short = good[..good.len() - 8 - 3].to_vec();
        let sum = fnv1a(&short);
        short.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(fresh.restore_bytes(&short), Err(SnapshotError::Truncated));
        // More entries than the target store can hold.
        let tiny = SharedBasisStore::new(1);
        assert_eq!(
            tiny.restore_bytes(&good),
            Err(SnapshotError::CapacityExceeded {
                entries: 2,
                capacity: 1
            })
        );
        // Every rejection left the store untouched…
        assert!(fresh.is_empty());
        // …and the unmodified bytes still restore.
        assert_eq!(fresh.restore_bytes(&good), Ok(2));
        assert!(fresh.get_exact(&point("x", 1), 8).is_some());
    }

    #[test]
    fn restore_cancels_inflight_and_resets_counters() {
        let s = SharedBasisStore::new(4);
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&[1.0, 2.0, 3.0, 4.0]))]),
            samples(1.0),
            8,
            true,
        );
        let probes = HashMap::from([("y".to_owned(), fp(&[2.0, 3.0, 4.0, 5.0]))]);
        let _ = s.find_correlated(&probes, &["y".to_owned()], &CorrelationDetector::default());
        assert_eq!(s.stats_snapshot().hits, 1);
        let bytes = s.snapshot_bytes();
        let TryClaim::Owner(guard) = s.try_claim(&point("x", 9), 1) else {
            panic!("expected owner");
        };
        let TryClaim::Pending(handle) = s.try_claim(&point("x", 9), 1) else {
            panic!("expected pending");
        };
        assert_eq!(s.restore_bytes(&bytes), Ok(1));
        assert!(handle.wait().is_none(), "restore wakes waiters to re-claim");
        assert!(
            !guard.complete(HashMap::new(), samples(0.0), 1, true),
            "stale completion after restore is discarded"
        );
        let snap = s.stats_snapshot();
        assert_eq!((snap.hits, snap.misses, snap.evictions), (0, 0, 0));
        assert_eq!(snap.entries, 1);
    }

    /// Out-of-order shard acquisition trips the rank checker like any
    /// other inversion — the property the multi-shard insert/scan/restore
    /// protocols lean on.
    #[test]
    fn shard_lock_rank_inversion_trips_the_checker() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let hi = OrderedRwLock::new(rank::STORE_SHARDS[1], ());
        let lo = OrderedRwLock::new(rank::STORE_SHARDS[0], ());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _a = hi.write();
            let _b = lo.read();
        }));
        let payload = result.expect_err("inversion must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "got: {msg}");
        assert!(
            msg.contains("basis store shard 1") && msg.contains("basis store shard 0"),
            "got: {msg}"
        );
    }

    #[test]
    fn store_events_carry_shard_ids() {
        use crate::trace::TraceConfig;
        let tracer = Tracer::new(TraceConfig::Ring { capacity: 64 });
        let s = SharedBasisStore::with_shards(1, 4).with_tracer(tracer.clone());
        let p1 = point("x", 1);
        let p2 = point("x", 2);
        let TryClaim::Owner(guard) = s.try_claim(&p1, 1) else {
            panic!("expected owner");
        };
        assert!(guard.complete(HashMap::new(), samples(1.0), 1, true));
        s.insert(p2.clone(), HashMap::new(), samples(2.0), 1, true); // evicts p1
        let events = tracer.events();
        let claim = events.iter().find_map(|e| match e.kind {
            TraceEventKind::StoreClaim { shard } => Some(shard),
            _ => None,
        });
        assert_eq!(claim, Some(s.shard_of(&p1) as u16));
        let evict = events.iter().find_map(|e| match e.kind {
            TraceEventKind::StoreEvict { shard } => Some(shard),
            _ => None,
        });
        assert_eq!(
            evict,
            Some(s.shard_of(&p1) as u16),
            "eviction reports the victim's shard"
        );
    }
}
