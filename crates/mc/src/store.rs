//! The shared, parameter-point-keyed basis store.
//!
//! The paper's Storage Manager holds "the set of basis distributions
//! containing the output of prior scenario evaluation runs". In the demo
//! that store lived inside a single GUI session; the service architecture
//! shares one store per scenario across *every* session, so a slider move in
//! one session can re-map results another session simulated
//! ([`SharedBasisStore`] is `Clone` + thread-safe: clones are handles onto
//! the same `Arc<RwLock<…>>`-backed state).
//!
//! Beyond storage, the store coordinates *work*: per-point in-flight guards
//! ([`SharedBasisStore::try_claim`]) guarantee that N concurrent sessions
//! evaluating the same cold point block on one simulation instead of each
//! running it (the thundering-herd dedup), and
//! [`SharedBasisStore::find_correlated_batch`] probes many fingerprint sets
//! against the candidate sources in one source-parallel scan.
//!
//! The match scan carries a **summary index**: every published matchable
//! record stores per-column [`FingerprintSummary`] moments
//! (`prophet_fingerprint::index`), and the scan walks candidates in
//! insertion-stamp order in fixed-size waves, pruning every candidate whose
//! summary bound proves it cannot beat the best match found in earlier
//! waves (or cannot match at all) before paying for the entry-by-entry
//! [`CorrelationDetector::detect_all`] comparison. Because the bound is a
//! true lower bound and ties resolve to the earliest stamp, the chosen
//! source is identical to the exhaustive scan's — and because pruning
//! decisions consult only completed waves (a constant wave width,
//! independent of `threads`), the scanned/pruned accounting is identical at
//! every thread count. The index is maintained under publish, replace,
//! eviction and clear; `find_correlated_batch_scan(…, use_index: false)`
//! keeps the exhaustive scan available for differential testing.
//!
//! This is the engine-level sibling of
//! [`prophet_fingerprint::BasisStore`]: that store is generic and keyed by
//! fingerprint alone; this one is keyed by [`ParamPoint`] and stores the
//! per-column fingerprints plus full sample sets the Figure-1 evaluation
//! cycle needs.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use prophet_fingerprint::index::{bound_all, summarize, FingerprintSummary, MatchBound};
use prophet_fingerprint::{CorrelationDetector, Fingerprint, Mapping};

use crate::instance::ParamPoint;
use crate::sync::{
    rank, ClaimLedger, OrderedCondvar, OrderedMutex, OrderedReadGuard, OrderedRwLock,
    OrderedWriteGuard,
};
use crate::trace::{TraceEventKind, Tracer, NO_CHUNK, NO_JOB};

/// Per-column Monte Carlo samples for one parameter point.
pub type ColumnSamples = HashMap<String, Vec<f64>>;

/// A successful correlated lookup: where the samples came from and how to
/// map each stochastic column onto the queried parameterization.
pub struct BasisHit {
    /// The basis point whose samples matched.
    pub source: ParamPoint,
    /// Per-column mapping from the source samples to the queried point.
    pub mappings: HashMap<String, Mapping>,
    /// The source point's stored samples (all columns).
    pub samples: Arc<ColumnSamples>,
    /// Worlds backing the stored samples.
    pub worlds: usize,
}

struct Record {
    fingerprints: Arc<HashMap<String, Fingerprint>>,
    /// Per-column summary statistics of `fingerprints`, precomputed at
    /// publish time so the match scan can bound this record's error
    /// against any probe without touching the fingerprints themselves.
    /// Empty for unmatchable records (they are never candidates).
    summaries: Arc<HashMap<String, FingerprintSummary>>,
    /// Samples for *all* output columns (stochastic and derived).
    samples: Arc<ColumnSamples>,
    worlds: usize,
    stamp: u64,
    /// Whether this entry may serve as a *source* for fingerprint matching.
    /// Only fully simulated entries qualify: a point reachable through an
    /// exact-mapped entry is also reachable through that entry's own
    /// source, so restricting candidates to simulated entries keeps match
    /// scans proportional to the number of genuinely distinct
    /// distributions, not the number of visited points.
    matchable: bool,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<ParamPoint, Record>,
    /// Matchable entries in insertion-stamp order: the candidate list the
    /// match scan walks. Maintained under insert/replace/evict/clear so no
    /// scan ever has to snapshot-and-sort the entry table — and so the
    /// index can never serve an evicted or cleared candidate.
    order: Vec<ParamPoint>,
    next_stamp: u64,
}

/// State of one in-flight simulation slot.
enum SlotState {
    /// The owning session is still computing.
    Running,
    /// The owner published: waiters reuse these samples directly (immune to
    /// store eviction — the hand-off does not go through `entries`).
    Done {
        samples: Arc<ColumnSamples>,
        worlds: usize,
    },
    /// The owner failed or the store was cleared mid-flight: waiters must
    /// re-claim and re-simulate.
    Cancelled,
}

/// One pending parameter point: a condvar-notified state cell shared by the
/// owner and every waiter.
struct PendingSlot {
    state: OrderedMutex<SlotState>,
    cv: OrderedCondvar,
}

impl PendingSlot {
    fn new() -> Self {
        PendingSlot {
            state: OrderedMutex::new(rank::INFLIGHT_SLOT, SlotState::Running),
            cv: OrderedCondvar::new(),
        }
    }

    /// Cancel if still running, waking every waiter.
    fn cancel(&self) {
        let mut state = self.state.lock();
        if matches!(*state, SlotState::Running) {
            *state = SlotState::Cancelled;
        }
        drop(state);
        self.cv.notify_all();
    }
}

struct Inflight {
    slots: OrderedMutex<HashMap<ParamPoint, Arc<PendingSlot>>>,
    /// Claim-protocol checker: every point must walk claimed → simulated →
    /// published (or claimed → cancelled) exactly once per claim. A no-op
    /// unless `cfg(any(test, feature = "check"))`.
    ledger: ClaimLedger<ParamPoint>,
}

impl Default for Inflight {
    fn default() -> Self {
        Inflight {
            slots: OrderedMutex::new(rank::INFLIGHT_TABLE, HashMap::new()),
            ledger: ClaimLedger::new(),
        }
    }
}

/// Outcome of [`SharedBasisStore::try_claim`].
pub enum TryClaim {
    /// The caller owns this point's simulation: it must publish through the
    /// guard ([`InflightGuard::complete`]) or drop it to release waiters.
    Owner(InflightGuard),
    /// The point is already stored with enough worlds.
    Ready {
        /// The stored per-column samples.
        samples: Arc<ColumnSamples>,
        /// Worlds backing them.
        worlds: usize,
    },
    /// Another session is simulating this point right now: block on the
    /// handle instead of duplicating the work.
    Pending(WaitHandle),
}

/// A claim on one parameter point's simulation. Dropping the guard without
/// completing (error or panic on the owning path) cancels the slot so
/// waiters wake up and re-claim.
pub struct InflightGuard {
    store: SharedBasisStore,
    point: ParamPoint,
    slot: Arc<PendingSlot>,
    completed: bool,
}

impl InflightGuard {
    /// The claimed point.
    pub fn point(&self) -> &ParamPoint {
        &self.point
    }

    /// Publish the computed samples: wake every waiter with them and insert
    /// the basis entry. Returns `false` when the store was cleared while
    /// the simulation was in flight — the results are *not* inserted (clear
    /// means "force cold start", so pre-clear work must not resurrect) and
    /// waiters have already been released to re-simulate.
    ///
    /// The whole publish — state flip, entry insert, slot removal — happens
    /// under the in-flight table lock, the same lock [`SharedBasisStore::clear`]
    /// and [`SharedBasisStore::try_claim`] serialize on. That atomicity is
    /// what the two guarantees rest on: a concurrent clear lands either
    /// entirely before this publish (the slot is already cancelled, the
    /// results are discarded) or entirely after (the inserted entry is
    /// wiped); and a concurrent `try_claim` can never observe the gap
    /// between "slot gone" and "entry inserted", so it cannot become a
    /// duplicate owner of work that just finished.
    pub fn complete(
        mut self,
        fingerprints: HashMap<String, Fingerprint>,
        samples: Arc<ColumnSamples>,
        worlds: usize,
        matchable: bool,
    ) -> bool {
        self.completed = true;
        let mut slots = self.store.inflight.slots.lock();
        {
            let mut state = self.slot.state.lock();
            if matches!(*state, SlotState::Cancelled) {
                // A clear detached this slot mid-flight: discard. The clear
                // already released this point's claim in the ledger.
                return false;
            }
            *state = SlotState::Done {
                samples: Arc::clone(&samples),
                worlds,
            };
        }
        self.store.inflight.ledger.on_simulated(&self.point);
        self.slot.cv.notify_all();
        self.store
            .insert(self.point.clone(), fingerprints, samples, worlds, matchable);
        self.store.inflight.ledger.on_published(&self.point);
        if let Some(current) = slots.get(&self.point) {
            if Arc::ptr_eq(current, &self.slot) {
                slots.remove(&self.point);
            }
        }
        self.store.inflight.ledger.on_released(&self.point);
        drop(slots);
        self.store
            .tracer
            .instant(TraceEventKind::StorePublish, NO_JOB, NO_CHUNK);
        true
    }

    /// Remove this slot from the pending table (if it is still the
    /// registered one — a clear may have already detached it). Returns
    /// whether this call detached it.
    fn detach(&self) -> bool {
        let mut slots = self.store.inflight.slots.lock();
        if let Some(current) = slots.get(&self.point) {
            if Arc::ptr_eq(current, &self.slot) {
                slots.remove(&self.point);
                return true;
            }
        }
        false
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        if !self.completed {
            // Cancellation: claimed → released, never simulated. If a clear
            // already detached the slot it also released the claim, so only
            // the detaching party reports the release.
            if self.detach() {
                self.store.inflight.ledger.on_released(&self.point);
            }
            self.slot.cancel();
        }
    }
}

/// A ticket for a simulation owned by another session.
pub struct WaitHandle {
    slot: Arc<PendingSlot>,
    stats: Arc<StoreStats>,
    tracer: Tracer,
}

impl WaitHandle {
    /// Block until the owning session publishes or cancels. `Some` carries
    /// the published samples (counted as an in-flight wait); `None` means
    /// the simulation was abandoned (owner failure or a store clear) — the
    /// caller should re-claim and, if it becomes the owner, re-simulate.
    pub fn wait(self) -> Option<(Arc<ColumnSamples>, usize)> {
        let start = self.tracer.now();
        let result = {
            let mut state = self.slot.state.lock();
            loop {
                match &*state {
                    SlotState::Running => {
                        state = self.slot.cv.wait(state);
                    }
                    SlotState::Done { samples, worlds } => {
                        self.stats.inflight_waits.fetch_add(1, Ordering::Relaxed);
                        break Some((Arc::clone(samples), *worlds));
                    }
                    SlotState::Cancelled => break None,
                }
            }
        };
        self.tracer
            .span(TraceEventKind::StoreWait, NO_JOB, NO_CHUNK, start);
        self.tracer
            .record_store_wait(self.tracer.now().saturating_sub(start));
        result
    }
}

/// Cross-session counters of one shared store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStatsSnapshot {
    /// Correlated probes that found a source.
    pub hits: u64,
    /// Correlated probes that found none.
    pub misses: u64,
    /// Evaluations served by blocking on another session's in-flight
    /// simulation instead of running their own.
    pub inflight_waits: u64,
}

/// Thread-safe basis store shared between engines/sessions of one scenario.
///
/// Cloning produces another handle onto the same store. Capacity is
/// bounded; eviction drops the oldest *mapped* entry first, because
/// simulated entries are the sources fingerprint matching lives on.
/// In-flight claims live outside the bounded entry table, so eviction can
/// never drop a pending simulation.
#[derive(Clone)]
pub struct SharedBasisStore {
    inner: Arc<OrderedRwLock<Inner>>,
    inflight: Arc<Inflight>,
    stats: Arc<StoreStats>,
    capacity: usize,
    /// Flight recorder for claim/wait/publish/evict events; disabled
    /// ([`Tracer::off`]) unless attached via
    /// [`SharedBasisStore::with_tracer`]. Events observe, never decide.
    tracer: Tracer,
}

#[derive(Default)]
struct StoreStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inflight_waits: AtomicU64,
}

/// Per-probe best match within one candidate slice: `(candidate index,
/// per-column mappings, total error)`.
type PartialBest = Vec<Option<(usize, HashMap<String, Mapping>, f64)>>;

/// Work accounting of one match scan
/// ([`SharedBasisStore::find_correlated_batch_scan`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchScanStats {
    /// (candidate, probe) pairs that ran the full entry-by-entry
    /// [`CorrelationDetector::detect_all`] comparison.
    pub candidates_scanned: u64,
    /// (candidate, probe) pairs the summary index skipped: the bound
    /// proved they could not match at all, or could not beat the best
    /// match already found.
    pub candidates_pruned: u64,
}

/// Wave width of the indexed scan: candidates are bounded and compared in
/// stamp-ordered blocks of this many, and pruning decisions for a wave
/// consult only the best matches of *completed* waves. The width is a
/// constant — never derived from `threads` — so which pairs get pruned is
/// a pure function of the store contents and the probes, making the
/// scanned/pruned accounting identical at every thread count (`threads`
/// only spreads a wave's surviving comparisons across workers).
const MATCH_WAVE: usize = 32;

/// Exhaustive reference scan (the pre-index behaviour): candidates
/// partition across up to `threads` workers, every (candidate, probe)
/// pair is compared, and partial bests merge by `(error, insertion
/// order)`. A zero-error hit is exact — nothing later can beat it, so
/// each worker short-circuits its slice once every probe is exact.
fn scan_exhaustive(
    candidates: &[(&ParamPoint, &Record)],
    probes: &[HashMap<String, Fingerprint>],
    columns: &[String],
    detector: &CorrelationDetector,
    threads: usize,
    stats: &mut MatchScanStats,
) -> PartialBest {
    let scan = |slice: &[(&ParamPoint, &Record)], base: usize| {
        let mut scanned = 0u64;
        let mut best: PartialBest = vec![None; probes.len()];
        for (ci, (_, record)) in slice.iter().enumerate() {
            let mut all_exact = true;
            for (pi, probe) in probes.iter().enumerate() {
                if matches!(&best[pi], Some((_, _, err)) if *err == 0.0) {
                    continue;
                }
                all_exact = false;
                scanned += 1;
                if let Some((mappings, err)) =
                    detector.detect_all(&record.fingerprints, probe, columns)
                {
                    let better = match &best[pi] {
                        None => true,
                        Some((_, _, best_err)) => err < *best_err,
                    };
                    if better {
                        best[pi] = Some((base + ci, mappings, err));
                    }
                }
            }
            if all_exact {
                break;
            }
        }
        (best, scanned)
    };

    let workers = threads.max(1).min(candidates.len().max(1));
    let partials: Vec<(PartialBest, u64)> = if workers <= 1 {
        vec![scan(candidates, 0)]
    } else {
        let chunk = candidates.len().div_ceil(workers);
        // lint:allow(thread-spawn): the exhaustive reference scan's scoped
        // fan-out predates the scheduler and must stay schedule-free so the
        // indexed scan can be differentially tested against it.
        std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .enumerate()
                .map(|(i, slice)| scope.spawn(move || scan(slice, i * chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("probe worker panicked"))
                .collect()
        })
    };

    let mut merged: PartialBest = vec![None; probes.len()];
    for (partial, scanned) in partials {
        stats.candidates_scanned += scanned;
        for (pi, slot) in partial.into_iter().enumerate() {
            if let Some((ci, mappings, err)) = slot {
                let better = match &merged[pi] {
                    None => true,
                    // Lexicographic (error, insertion order): ties resolve
                    // to the earliest-inserted source no matter how
                    // candidates were partitioned.
                    Some((best_ci, _, best_err)) => {
                        err < *best_err || (err == *best_err && ci < *best_ci)
                    }
                };
                if better {
                    merged[pi] = Some((ci, mappings, err));
                }
            }
        }
    }
    merged
}

/// Branch-and-bound scan over the summary index. Soundness (the chosen
/// source is bit-identical to [`scan_exhaustive`]'s) rests on two facts:
/// the summary bound never exceeds the error `detect_all` would report
/// (`prophet_fingerprint::index` docs carry the proof), and candidates are
/// walked in stamp order, so any incumbent best predates the candidates
/// being pruned against it — a candidate whose error cannot go *below*
/// the incumbent's loses even on an exact tie, because ties resolve to
/// the earliest stamp.
fn scan_indexed(
    candidates: &[(&ParamPoint, &Record)],
    probes: &[HashMap<String, Fingerprint>],
    columns: &[String],
    detector: &CorrelationDetector,
    threads: usize,
    stats: &mut MatchScanStats,
) -> PartialBest {
    let probe_summaries: Vec<HashMap<String, FingerprintSummary>> =
        probes.iter().map(summarize).collect();
    let mut best: PartialBest = vec![None; probes.len()];
    for (wave_idx, wave) in candidates.chunks(MATCH_WAVE).enumerate() {
        if best
            .iter()
            .all(|b| matches!(b, Some((_, _, err)) if *err == 0.0))
        {
            break; // every probe already has an exact match
        }
        let base = wave_idx * MATCH_WAVE;
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        for (offset, (_, record)) in wave.iter().enumerate() {
            let ci = base + offset;
            for (pi, probe_summary) in probe_summaries.iter().enumerate() {
                // A zero-error incumbent prunes every later candidate no
                // matter what its bound comes out to (Infeasible prunes,
                // and any Feasible bound is ≥ 0 = the incumbent's error),
                // so skip the bound computation outright — the accounting
                // is identical.
                if matches!(&best[pi], Some((_, _, err)) if *err == 0.0) {
                    stats.candidates_pruned += 1;
                    continue;
                }
                match bound_all(&record.summaries, probe_summary, columns, detector) {
                    MatchBound::Infeasible => stats.candidates_pruned += 1,
                    MatchBound::Feasible(bound) => match &best[pi] {
                        Some((_, _, incumbent)) if bound >= *incumbent => {
                            stats.candidates_pruned += 1;
                        }
                        _ => jobs.push((ci, pi)),
                    },
                }
            }
        }
        stats.candidates_scanned += jobs.len() as u64;
        // A wave's surviving comparisons are independent: fan out, then
        // merge sequentially in stamp order (strictly-better replacement
        // keeps the earliest stamp on ties, as the exhaustive scan does).
        let detected = parallel_chunks(&jobs, threads, |&(ci, pi)| {
            detector.detect_all(&candidates[ci].1.fingerprints, &probes[pi], columns)
        });
        for (&(ci, pi), result) in jobs.iter().zip(detected) {
            if let Some((mappings, err)) = result {
                let better = match &best[pi] {
                    None => true,
                    Some((_, _, best_err)) => err < *best_err,
                };
                if better {
                    best[pi] = Some((ci, mappings, err));
                }
            }
        }
    }
    best
}

/// Apply `f` to every item, fanning out across up to `threads` scoped
/// workers (contiguous chunks, results in input order). Single-item or
/// single-thread calls run inline with no spawn overhead.
fn parallel_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    // lint:allow(thread-spawn): wave-local fan-out of pure comparisons;
    // runs under the store's read lock where pool chunks must not block.
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("match worker panicked"))
            .collect()
    })
}

impl SharedBasisStore {
    /// Create an empty store holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a store that cannot hold anything is a
    /// configuration bug).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "basis store capacity must be positive");
        SharedBasisStore {
            inner: Arc::new(OrderedRwLock::new(rank::STORE_INNER, Inner::default())),
            inflight: Arc::new(Inflight::default()),
            stats: Arc::new(StoreStats::default()),
            capacity,
            tracer: Tracer::off(),
        }
    }

    /// Attach a flight recorder: claim, in-flight wait, publish, and
    /// eviction events are recorded against it (plus the store-wait
    /// latency histogram). The service facade attaches its scheduler's
    /// tracer so store and scheduler events share one timeline.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached flight recorder (disabled unless
    /// [`SharedBasisStore::with_tracer`] was used).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Maximum number of entries before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.read().entries.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (forces cold start) and reset hit accounting.
    ///
    /// In-flight simulations are cancelled, not orphaned: every pending
    /// slot is detached and its waiters woken, so they re-claim and
    /// re-simulate against the now-empty store, and the interrupted owners'
    /// results are discarded on [`InflightGuard::complete`] instead of
    /// resurrecting pre-clear state.
    ///
    /// Cancelling and wiping happen under the in-flight table lock that
    /// [`InflightGuard::complete`] publishes under, so a racing completion
    /// is either fully before this clear (its entry is wiped with the rest)
    /// or fully after (its slot is already cancelled and its results are
    /// discarded) — never a stale entry in a "cleared" store.
    pub fn clear(&self) {
        let mut slots = self.inflight.slots.lock();
        for (point, slot) in slots.drain() {
            slot.cancel();
            // The detached owner's claim ends here: claimed → released
            // (its eventual `complete` observes the cancel and discards).
            self.inflight.ledger.on_released(&point);
        }
        {
            let mut inner = self.write();
            inner.entries.clear();
            inner.order.clear();
        }
        drop(slots);
        self.stats.hits.store(0, Ordering::Relaxed);
        self.stats.misses.store(0, Ordering::Relaxed);
        self.stats.inflight_waits.store(0, Ordering::Relaxed);
    }

    /// `(hits, misses)` of correlated lookups so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.stats.hits.load(Ordering::Relaxed),
            self.stats.misses.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of all cross-session counters.
    pub fn stats_snapshot(&self) -> StoreStatsSnapshot {
        StoreStatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            inflight_waits: self.stats.inflight_waits.load(Ordering::Relaxed),
        }
    }

    /// Number of points currently claimed by in-flight simulations.
    pub fn inflight_len(&self) -> usize {
        self.inflight.slots.lock().len()
    }

    /// True if `other` is a handle onto the same underlying store.
    pub fn shares_storage_with(&self, other: &SharedBasisStore) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Exact lookup: stored samples for `point`, provided they are backed by
    /// at least `min_worlds` worlds.
    pub fn get_exact(&self, point: &ParamPoint, min_worlds: usize) -> Option<Arc<ColumnSamples>> {
        self.read()
            .entries
            .get(point)
            .filter(|e| e.worlds >= min_worlds)
            .map(|e| Arc::clone(&e.samples))
    }

    /// Claim `point` for evaluation, deduplicating concurrent work: at most
    /// one session owns a point's simulation at a time.
    ///
    /// * [`TryClaim::Ready`] — already stored with `min_worlds`+ worlds.
    /// * [`TryClaim::Owner`] — the caller must simulate and publish through
    ///   the returned [`InflightGuard`].
    /// * [`TryClaim::Pending`] — another session owns it; block on the
    ///   [`WaitHandle`] to reuse its result.
    pub fn try_claim(&self, point: &ParamPoint, min_worlds: usize) -> TryClaim {
        self.tracer
            .instant(TraceEventKind::StoreClaim, NO_JOB, NO_CHUNK);
        let mut slots = self.inflight.slots.lock();
        // Exact check under the in-flight lock so a concurrent complete()
        // cannot publish between the store check and slot registration.
        {
            let inner = self.read();
            if let Some(e) = inner.entries.get(point) {
                if e.worlds >= min_worlds {
                    return TryClaim::Ready {
                        samples: Arc::clone(&e.samples),
                        worlds: e.worlds,
                    };
                }
            }
        }
        match slots.entry(point.clone()) {
            Entry::Occupied(e) => TryClaim::Pending(WaitHandle {
                slot: Arc::clone(e.get()),
                stats: Arc::clone(&self.stats),
                tracer: self.tracer.clone(),
            }),
            Entry::Vacant(v) => {
                let slot = Arc::new(PendingSlot::new());
                v.insert(Arc::clone(&slot));
                self.inflight.ledger.on_claimed(point);
                TryClaim::Owner(InflightGuard {
                    store: self.clone(),
                    point: point.clone(),
                    slot,
                    completed: false,
                })
            }
        }
    }

    /// Insert (or replace) the entry for `point`. `matchable` marks fully
    /// simulated entries that may serve as mapping sources; their
    /// fingerprint summaries are computed here, so the match index is
    /// maintained atomically with the entry table (publish, replace,
    /// eviction and clear all hold the same write lock).
    pub fn insert(
        &self,
        point: ParamPoint,
        fingerprints: HashMap<String, Fingerprint>,
        samples: Arc<ColumnSamples>,
        worlds: usize,
        matchable: bool,
    ) {
        // Summarize outside the write lock — pure function of the inputs.
        let summaries = if matchable {
            Arc::new(summarize(&fingerprints))
        } else {
            Arc::new(HashMap::new())
        };
        let mut inner = self.write();
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&point) {
            let victim = inner
                .entries
                .iter()
                .filter(|(_, e)| !e.matchable)
                .min_by_key(|(_, e)| e.stamp)
                .or_else(|| inner.entries.iter().min_by_key(|(_, e)| e.stamp))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                if let Some(evicted) = inner.entries.remove(&victim) {
                    if evicted.matchable {
                        inner.order.retain(|p| *p != victim);
                    }
                    self.tracer
                        .instant(TraceEventKind::StoreEvict, NO_JOB, NO_CHUNK);
                }
            }
        }
        let replaced = inner.entries.insert(
            point.clone(),
            Record {
                fingerprints: Arc::new(fingerprints),
                summaries,
                samples,
                worlds,
                stamp,
                matchable,
            },
        );
        if replaced.is_some_and(|r| r.matchable) {
            inner.order.retain(|p| *p != point);
        }
        if matchable {
            inner.order.push(point);
        }
    }

    /// Search the store for a matchable entry where *every* column in
    /// `columns` has a detectable mapping onto the probe fingerprints.
    /// Returns the best (lowest total error) candidate. This is a batch of
    /// one through the summary-indexed scan — the maintained candidate
    /// list and bounds mean single-probe online adjustments pay no
    /// snapshot-and-sort and prune exactly like batched sweeps do.
    pub fn find_correlated(
        &self,
        probes: &HashMap<String, Fingerprint>,
        columns: &[String],
        detector: &CorrelationDetector,
    ) -> Option<BasisHit> {
        self.find_correlated_batch(std::slice::from_ref(probes), columns, detector, 1)
            .pop()
            .flatten()
    }

    /// Batched correlated lookup through the summary index; see
    /// [`SharedBasisStore::find_correlated_batch_scan`], which this
    /// forwards to with `use_index: true`, discarding the scan accounting.
    pub fn find_correlated_batch(
        &self,
        probes: &[HashMap<String, Fingerprint>],
        columns: &[String],
        detector: &CorrelationDetector,
        threads: usize,
    ) -> Vec<Option<BasisHit>> {
        self.find_correlated_batch_scan(probes, columns, detector, threads, true)
            .0
    }

    /// Batched correlated lookup: probe many fingerprint sets against the
    /// matchable entries in one scan. Result `i` is the best hit for
    /// `probes[i]`.
    ///
    /// The scan runs under the store's read lock, walking the maintained
    /// stamp-ordered candidate list — nothing is snapshotted, sorted, or
    /// cloned except the winning hits. With `use_index` the scan is
    /// branch-and-bound over summary bounds (see the module docs): only
    /// candidates whose bound can still beat the best match of completed
    /// waves run [`CorrelationDetector::detect_all`], and the surviving
    /// comparisons of each wave fan out across up to `threads` workers.
    /// Without it, candidates partition across workers and every pair is
    /// compared (the exhaustive reference scan). Both paths pick the best
    /// candidate by `(total error, insertion order)`, so the chosen source
    /// is identical between them and independent of the thread count; with
    /// the index, the returned [`MatchScanStats`] is thread-independent
    /// too.
    pub fn find_correlated_batch_scan(
        &self,
        probes: &[HashMap<String, Fingerprint>],
        columns: &[String],
        detector: &CorrelationDetector,
        threads: usize,
        use_index: bool,
    ) -> (Vec<Option<BasisHit>>, MatchScanStats) {
        if probes.is_empty() {
            return (Vec::new(), MatchScanStats::default());
        }
        let inner = self.read();
        let candidates: Vec<(&ParamPoint, &Record)> = inner
            .order
            .iter()
            .filter_map(|p| inner.entries.get(p).map(|r| (p, r)))
            .filter(|(_, r)| !r.fingerprints.is_empty())
            .collect();

        let mut stats = MatchScanStats::default();
        let best = if use_index {
            scan_indexed(&candidates, probes, columns, detector, threads, &mut stats)
        } else {
            scan_exhaustive(&candidates, probes, columns, detector, threads, &mut stats)
        };

        let results: Vec<Option<BasisHit>> = best
            .into_iter()
            .map(|slot| match slot {
                Some((ci, mappings, _)) => {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    let (point, record) = candidates[ci];
                    Some(BasisHit {
                        source: point.clone(),
                        mappings,
                        samples: Arc::clone(&record.samples),
                        worlds: record.worlds,
                    })
                }
                None => {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            })
            .collect();
        drop(inner);
        (results, stats)
    }

    fn read(&self) -> OrderedReadGuard<'_, Inner> {
        self.inner.read()
    }

    fn write(&self) -> OrderedWriteGuard<'_, Inner> {
        self.inner.write()
    }
}

impl std::fmt::Debug for SharedBasisStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats_snapshot();
        f.debug_struct("SharedBasisStore")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("inflight", &self.inflight_len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("inflight_waits", &stats.inflight_waits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, v: i64) -> ParamPoint {
        ParamPoint::from_pairs([(name.to_owned(), v)])
    }

    fn fp(values: &[f64]) -> Fingerprint {
        Fingerprint::from_values(values.to_vec())
    }

    fn samples(v: f64) -> Arc<ColumnSamples> {
        Arc::new(HashMap::from([("y".to_owned(), vec![v, v + 1.0])]))
    }

    #[test]
    fn exact_lookup_respects_min_worlds() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        s.insert(p.clone(), HashMap::new(), samples(1.0), 50, true);
        assert!(s.get_exact(&p, 50).is_some());
        assert!(s.get_exact(&p, 51).is_none(), "too few worlds stored");
        assert!(s.get_exact(&point("x", 2), 1).is_none());
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedBasisStore::new(8);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
        a.insert(point("x", 1), HashMap::new(), samples(0.0), 10, true);
        assert_eq!(
            b.len(),
            1,
            "insert through one handle is visible through the other"
        );
        b.clear();
        assert!(a.is_empty());
        assert!(!a.shares_storage_with(&SharedBasisStore::new(8)));
    }

    #[test]
    fn correlated_lookup_finds_offset_related_entry() {
        let s = SharedBasisStore::new(8);
        let base = [1.0, 2.0, 3.0, 5.0];
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(10.0),
            100,
            true,
        );
        let shifted: Vec<f64> = base.iter().map(|v| v + 7.0).collect();
        let probes = HashMap::from([("y".to_owned(), fp(&shifted))]);
        let hit = s
            .find_correlated(&probes, &["y".to_owned()], &CorrelationDetector::default())
            .expect("offset relation must match");
        assert_eq!(hit.source, point("x", 1));
        assert_eq!(hit.worlds, 100);
        assert_eq!(hit.mappings["y"], Mapping::Offset(7.0));
        assert_eq!(s.hit_stats(), (1, 0));
    }

    #[test]
    fn unmatchable_entries_are_skipped() {
        let s = SharedBasisStore::new(8);
        let base = [1.0, 2.0, 3.0, 5.0];
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(0.0),
            100,
            false, // mapped entry: not a matching source
        );
        let probes = HashMap::from([("y".to_owned(), fp(&base))]);
        assert!(s
            .find_correlated(&probes, &["y".to_owned()], &CorrelationDetector::default())
            .is_none());
        assert_eq!(s.hit_stats(), (0, 1));
    }

    #[test]
    fn batch_lookup_matches_per_probe_and_prefers_earliest_exact_source() {
        let s = SharedBasisStore::new(8);
        let base = [1.0, 2.0, 3.0, 5.0];
        // Two identical sources: ties must resolve to the first inserted.
        s.insert(
            point("x", 1),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(1.0),
            100,
            true,
        );
        s.insert(
            point("x", 2),
            HashMap::from([("y".to_owned(), fp(&base))]),
            samples(2.0),
            100,
            true,
        );
        let shifted: Vec<f64> = base.iter().map(|v| v + 7.0).collect();
        let unrelated = [0.3, 0.1, 0.4, 0.1];
        let probes = vec![
            HashMap::from([("y".to_owned(), fp(&base))]),
            HashMap::from([("y".to_owned(), fp(&shifted))]),
            HashMap::from([("y".to_owned(), fp(&unrelated))]),
        ];
        for threads in [1, 4] {
            let hits = s.find_correlated_batch(
                &probes,
                &["y".to_owned()],
                &CorrelationDetector::default(),
                threads,
            );
            assert_eq!(hits.len(), 3);
            let h0 = hits[0].as_ref().expect("identity probe hits");
            assert_eq!(h0.source, point("x", 1), "earliest exact source wins");
            assert_eq!(h0.mappings["y"], Mapping::Identity);
            let h1 = hits[1].as_ref().expect("offset probe hits");
            assert_eq!(h1.mappings["y"], Mapping::Offset(7.0));
            assert!(hits[2].is_none(), "unrelated probe misses");
        }
    }

    #[test]
    fn try_claim_dedupes_concurrent_simulations() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        let TryClaim::Owner(guard) = s.try_claim(&p, 10) else {
            panic!("first claim on a cold point must own it");
        };
        assert_eq!(s.inflight_len(), 1);
        let TryClaim::Pending(handle) = s.try_claim(&p, 10) else {
            panic!("second claim must observe the in-flight owner");
        };
        let waiter = std::thread::spawn(move || handle.wait());
        assert!(guard.complete(HashMap::new(), samples(3.0), 10, true));
        let (got, worlds) = waiter.join().unwrap().expect("published, not cancelled");
        assert_eq!(got["y"], vec![3.0, 4.0]);
        assert_eq!(worlds, 10);
        assert_eq!(s.inflight_len(), 0);
        assert_eq!(s.stats_snapshot().inflight_waits, 1);
        // Published entry is now an exact hit for later claims.
        assert!(matches!(s.try_claim(&p, 10), TryClaim::Ready { .. }));
        assert!(
            matches!(s.try_claim(&p, 11), TryClaim::Owner(_)),
            "too few stored worlds re-opens the claim"
        );
    }

    #[test]
    fn dropped_guard_cancels_waiters_so_they_reclaim() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        let TryClaim::Owner(guard) = s.try_claim(&p, 10) else {
            panic!("expected owner");
        };
        let TryClaim::Pending(handle) = s.try_claim(&p, 10) else {
            panic!("expected pending");
        };
        drop(guard); // owner failed before publishing
        assert!(handle.wait().is_none(), "waiters must not block forever");
        assert!(
            matches!(s.try_claim(&p, 10), TryClaim::Owner(_)),
            "slot released: the next claimant owns the retry"
        );
    }

    #[test]
    fn clear_cancels_inflight_and_discards_stale_completion() {
        let s = SharedBasisStore::new(8);
        let p = point("x", 1);
        let TryClaim::Owner(guard) = s.try_claim(&p, 10) else {
            panic!("expected owner");
        };
        let TryClaim::Pending(handle) = s.try_claim(&p, 10) else {
            panic!("expected pending");
        };
        s.clear();
        assert_eq!(s.inflight_len(), 0, "clear detaches pending slots");
        assert!(
            handle.wait().is_none(),
            "clear wakes waiters to re-simulate"
        );
        assert!(
            !guard.complete(HashMap::new(), samples(9.0), 10, true),
            "completion after clear reports the discard"
        );
        assert!(
            s.get_exact(&p, 1).is_none(),
            "pre-clear results must not resurrect"
        );
        // The store is fully usable again.
        let TryClaim::Owner(fresh) = s.try_claim(&p, 10) else {
            panic!("expected fresh owner after clear");
        };
        assert!(fresh.complete(HashMap::new(), samples(1.0), 10, true));
        assert!(s.get_exact(&p, 10).is_some());
    }

    #[test]
    fn eviction_never_drops_a_pending_inflight_entry() {
        // Capacity 1: the pending point is claimed, then unrelated inserts
        // churn the bounded table. The waiter must still receive the
        // published samples — the in-flight hand-off bypasses `entries`.
        let s = SharedBasisStore::new(1);
        let p = point("x", 1);
        let TryClaim::Owner(guard) = s.try_claim(&p, 4) else {
            panic!("expected owner");
        };
        let TryClaim::Pending(handle) = s.try_claim(&p, 4) else {
            panic!("expected pending");
        };
        s.insert(point("x", 2), HashMap::new(), samples(2.0), 4, true);
        s.insert(point("x", 3), HashMap::new(), samples(3.0), 4, true);
        assert_eq!(s.len(), 1, "capacity bound holds while a claim is open");
        assert_eq!(s.inflight_len(), 1, "churn cannot evict the claim");
        assert!(guard.complete(HashMap::new(), samples(7.0), 4, true));
        let (got, _) = handle.wait().expect("waiter survives eviction churn");
        assert_eq!(got["y"], vec![7.0, 8.0]);
    }

    #[test]
    fn eviction_prefers_unmatchable_entries() {
        let s = SharedBasisStore::new(2);
        s.insert(point("x", 1), HashMap::new(), samples(0.0), 10, true);
        s.insert(point("x", 2), HashMap::new(), samples(0.0), 10, false);
        s.insert(point("x", 3), HashMap::new(), samples(0.0), 10, true);
        assert_eq!(s.len(), 2);
        assert!(
            s.get_exact(&point("x", 1), 1).is_some(),
            "simulated source survives"
        );
        assert!(
            s.get_exact(&point("x", 2), 1).is_none(),
            "mapped entry evicted first"
        );
        assert!(s.get_exact(&point("x", 3), 1).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SharedBasisStore::new(0);
    }
}
