//! The Result Aggregator: streaming statistics over Monte Carlo samples.
//!
//! "The Result Aggregator produces expectations, standard deviations, and
//! other desired metrics" (§2). Everything here is single-pass (Welford) or
//! cheap post-passes, and mergeable so the offline sweep can aggregate
//! across worker threads.

/// Numerically stable streaming mean/variance (Welford's algorithm), plus
/// min/max.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate one observation. Non-finite samples are counted into
    /// min/max but poison the moments — models are expected to produce
    /// finite values and `tests/failure_injection.rs` verifies NaNs surface
    /// rather than disappear.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Accumulate many observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (`None` when fewer than 2 observations).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.n as f64).sqrt())
    }

    /// Half-width of the normal-approximation confidence interval at the
    /// given z score (1.96 ≈ 95%).
    pub fn ci_half_width(&self, z: f64) -> Option<f64> {
        self.std_error().map(|se| z * se)
    }

    /// Whether the CI half-width is at or below `epsilon` — the engine's
    /// "first accurate guess" criterion for progressive refinement.
    pub fn converged(&self, epsilon: f64, z: f64) -> bool {
        match self.ci_half_width(z) {
            Some(hw) => self.n >= 2 && hw <= epsilon,
            None => false,
        }
    }

    /// Merge another accumulator (Chan's parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot as an owned [`SampleStats`].
    pub fn stats(&self) -> SampleStats {
        SampleStats {
            count: self.n,
            mean: self.mean().unwrap_or(f64::NAN),
            std_dev: self.std_dev().unwrap_or(0.0),
            min: self.min().unwrap_or(f64::NAN),
            max: self.max().unwrap_or(f64::NAN),
        }
    }
}

/// An immutable summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Empirical quantile (linear interpolation between order statistics).
/// `q` is clamped to `[0, 1]`. Returns `None` on an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Fixed-range equal-width histogram.
///
/// The online GUI's distribution insets (Figure 3) are driven by these;
/// benches also use them to compare original vs fingerprint-mapped output
/// distributions bucket by bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create with `bins` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` — construction sites are static.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range [{lo}, {hi}) is empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Add many observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// L1 distance between two histograms' normalized bin masses — a cheap
    /// distribution-similarity metric used in mapping-accuracy experiments.
    /// Returns `None` if shapes differ or either is empty.
    pub fn l1_distance(&self, other: &Histogram) -> Option<f64> {
        if self.counts.len() != other.counts.len() || self.lo != other.lo || self.hi != other.hi {
            return None;
        }
        let (ta, tb) = (self.total(), other.total());
        if ta == 0 || tb == 0 {
            return None;
        }
        let mut d = (self.underflow as f64 / ta as f64 - other.underflow as f64 / tb as f64).abs()
            + (self.overflow as f64 / ta as f64 - other.overflow as f64 / tb as f64).abs();
        for (a, b) in self.counts.iter().zip(&other.counts) {
            d += (*a as f64 / ta as f64 - *b as f64 / tb as f64).abs();
        }
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_stats(xs: &[f64]) -> (f64, f64) {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        (m, v)
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 7919) % 1000) as f64 / 10.0)
            .collect();
        let mut w = Welford::new();
        w.extend(&xs);
        let (m, v) = naive_stats(&xs);
        assert!((w.mean().unwrap() - m).abs() < 1e-10);
        assert!((w.variance().unwrap() - v).abs() < 1e-9);
        assert_eq!(w.count(), 1000);
        assert_eq!(w.min().unwrap(), 0.0);
        assert_eq!(w.max().unwrap(), 99.9);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation probe: huge mean, tiny variance.
        let xs: Vec<f64> = (0..100).map(|i| 1e9 + (i % 2) as f64).collect();
        let mut w = Welford::new();
        w.extend(&xs);
        let v = w.variance().unwrap();
        assert!((v - 0.25252525252525254).abs() < 1e-6, "v={v}");
    }

    #[test]
    fn welford_empty_and_singleton() {
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        assert!(!w.converged(1.0, 1.96));

        let mut w = Welford::new();
        w.push(5.0);
        assert_eq!(w.mean(), Some(5.0));
        assert_eq!(w.variance(), None);
        assert_eq!(w.min(), Some(5.0));
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(123);
        let mut wa = Welford::new();
        wa.extend(a);
        let mut wb = Welford::new();
        wb.extend(b);
        wa.merge(&wb);

        let mut wseq = Welford::new();
        wseq.extend(&xs);
        assert_eq!(wa.count(), wseq.count());
        assert!((wa.mean().unwrap() - wseq.mean().unwrap()).abs() < 1e-10);
        assert!((wa.variance().unwrap() - wseq.variance().unwrap()).abs() < 1e-9);
        assert_eq!(wa.min(), wseq.min());
        assert_eq!(wa.max(), wseq.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut w = Welford::new();
        w.push(1.0);
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);

        let mut e = Welford::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn convergence_criterion_tightens_with_n() {
        let mut w = Welford::new();
        for i in 0..10 {
            w.push((i % 2) as f64);
        }
        assert!(
            !w.converged(0.01, 1.96),
            "10 samples of a coin flip are not accurate to 0.01"
        );
        for i in 0..100_000 {
            w.push((i % 2) as f64);
        }
        assert!(w.converged(0.01, 1.96));
    }

    #[test]
    fn quantiles() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&xs, -1.0), Some(1.0), "clamped");
        assert_eq!(quantile(&[], 0.5), None);
        // order independence
        let ys = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&ys, 0.5), Some(2.5));
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend(&[-1.0, 0.0, 1.9, 2.0, 9.999, 10.0, 42.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_l1_distance() {
        let mut a = Histogram::new(0.0, 10.0, 2);
        let mut b = Histogram::new(0.0, 10.0, 2);
        a.extend(&[1.0, 1.0, 6.0, 6.0]);
        b.extend(&[1.0, 1.0, 6.0, 6.0]);
        assert_eq!(a.l1_distance(&b), Some(0.0));
        let mut c = Histogram::new(0.0, 10.0, 2);
        c.extend(&[1.0, 1.0, 1.0, 1.0]);
        assert!((a.l1_distance(&c).unwrap() - 1.0).abs() < 1e-12);
        // mismatched shapes
        let d = Histogram::new(0.0, 10.0, 3);
        assert_eq!(a.l1_distance(&d), None);
        // empty
        let e = Histogram::new(0.0, 10.0, 2);
        assert_eq!(a.l1_distance(&e), None);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
