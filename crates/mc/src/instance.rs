//! Parameter points: concrete valuations of scenario parameters.

use std::collections::HashMap;
use std::fmt;

use prophet_data::Value;

/// A concrete valuation of every scenario parameter — one coordinate of the
/// parameter space. Paired with a world id, it identifies an *instance*
/// (a possible world) in the paper's terminology.
///
/// Entries are kept sorted by parameter name so that equal points have equal
/// representations: `ParamPoint` is used as a cache key by the fingerprint
/// basis store and must hash deterministically.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ParamPoint {
    entries: Vec<(String, i64)>,
}

impl ParamPoint {
    /// Empty point (scenario with no parameters).
    pub fn new() -> Self {
        ParamPoint::default()
    }

    /// Build from `(name, value)` pairs; later duplicates overwrite earlier.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, i64)>,
        S: Into<String>,
    {
        let mut point = ParamPoint::new();
        for (name, value) in pairs {
            point.set(name.into(), value);
        }
        point
    }

    /// Set (or overwrite) one parameter.
    pub fn set(&mut self, name: impl Into<String>, value: i64) {
        let name = name.into();
        match self
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name, value)),
        }
    }

    /// A copy with one parameter replaced — the "adjust one slider" op of
    /// online mode.
    pub fn with(&self, name: impl Into<String>, value: i64) -> Self {
        let mut copy = self.clone();
        copy.set(name, value);
        copy
    }

    /// Value of a parameter, if set.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// The subset of this point restricted to `names` (missing names are
    /// skipped). Fingerprints key on the parameters a *model* actually
    /// reads, not the whole scenario point.
    pub fn restrict(&self, names: &[&str]) -> ParamPoint {
        ParamPoint::from_pairs(
            self.entries
                .iter()
                .filter(|(n, _)| names.contains(&n.as_str()))
                .map(|(n, v)| (n.clone(), *v)),
        )
    }

    /// Convert to the `@param → Value` map the SQL executor consumes.
    pub fn to_value_map(&self) -> HashMap<String, Value> {
        self.entries
            .iter()
            .map(|(n, v)| (n.clone(), Value::Int(*v)))
            .collect()
    }

    /// Stable hash of the point, used to derive per-point world seeds so
    /// different points get independent randomness under one root seed.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over "name=value;" pairs; stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (n, v) in &self.entries {
            eat(n.as_bytes());
            eat(b"=");
            eat(&v.to_le_bytes());
            eat(b";");
        }
        h
    }
}

impl fmt::Display for ParamPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "@{n}={v}")?;
        }
        write!(f, "}}")
    }
}

impl<S: Into<String>> FromIterator<(S, i64)> for ParamPoint {
    fn from_iter<I: IntoIterator<Item = (S, i64)>>(iter: I) -> Self {
        ParamPoint::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_does_not_matter() {
        let a = ParamPoint::from_pairs([("b", 2i64), ("a", 1)]);
        let b = ParamPoint::from_pairs([("a", 1i64), ("b", 2)]);
        assert_eq!(a, b);
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn set_get_overwrite() {
        let mut p = ParamPoint::new();
        assert!(p.is_empty());
        p.set("current", 10);
        p.set("current", 20);
        assert_eq!(p.get("current"), Some(20));
        assert_eq!(p.get("missing"), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn with_clones_without_mutating() {
        let p = ParamPoint::from_pairs([("x", 1i64)]);
        let q = p.with("x", 9);
        assert_eq!(p.get("x"), Some(1));
        assert_eq!(q.get("x"), Some(9));
    }

    #[test]
    fn restrict_keeps_only_named() {
        let p = ParamPoint::from_pairs([("current", 3i64), ("purchase1", 8), ("feature", 12)]);
        let r = p.restrict(&["purchase1", "current"]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("feature"), None);
        assert_eq!(r.get("purchase1"), Some(8));
    }

    #[test]
    fn stable_hash_distinguishes_values_and_names() {
        let a = ParamPoint::from_pairs([("x", 1i64)]);
        let b = ParamPoint::from_pairs([("x", 2i64)]);
        let c = ParamPoint::from_pairs([("y", 1i64)]);
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_ne!(a.stable_hash(), c.stable_hash());
        // Hash must be reproducible across calls.
        assert_eq!(a.stable_hash(), a.stable_hash());
    }

    #[test]
    fn value_map_conversion() {
        let p = ParamPoint::from_pairs([("current", 7i64)]);
        let m = p.to_value_map();
        assert_eq!(m["current"], Value::Int(7));
    }

    #[test]
    fn display_format() {
        let p = ParamPoint::from_pairs([("b", 2i64), ("a", 1)]);
        assert_eq!(p.to_string(), "{@a=1, @b=2}");
    }
}
