//! Instrumented synchronization primitives: rank-ordered locks and the
//! claim-protocol ledger.
//!
//! Every lock in the scheduler/store layer is wrapped in an
//! [`OrderedMutex`] / [`OrderedRwLock`] carrying a [`LockRank`] from the
//! workspace-wide rank table (documented in `docs/CONCURRENCY.md` and
//! re-exported with the engine-side ranks from `fuzzy_prophet::sync`).
//! The discipline is **strictly ascending acquisition**: a thread may only
//! acquire a lock whose rank is strictly greater than the highest rank it
//! currently holds. Any two code paths that obey that rule cannot
//! deadlock on these locks, whatever their interleaving.
//!
//! Under `cfg(any(test, feature = "check"))` each acquisition is checked
//! against a thread-local stack of held ranks and a violation panics
//! *before* blocking on the lock — so an ordering bug surfaces as a
//! diagnostic naming both locks instead of as a silent deadlock. In
//! release builds (without the `check` feature) the tracking compiles out
//! entirely: the wrappers are a `&'static` rank tag around the std
//! primitive and the check helpers are empty `#[inline(always)]` bodies.
//!
//! What never compiles out is poison reporting: acquiring a poisoned lock
//! panics with the lock's *name and rank* (satisfying "which lock
//! poisoned?") instead of std's anonymous `PoisonError` unwind.
//!
//! The module also hosts [`ClaimLedger`], the claim-protocol state
//! machine for the store's in-flight slots: every parameter point must go
//! **claimed → simulated → published** exactly once per claim, with the
//! publish landing before the claim is released (a claim released without
//! publishing is a *cancellation*, which is legal; a claim released
//! between simulate and publish is not). The store calls the ledger's
//! transition hooks from `try_claim` / `InflightGuard::complete` /
//! `clear`; under `check` any out-of-order transition panics with the
//! offending point.

use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(any(test, feature = "check"))]
use std::cell::RefCell;
#[cfg(any(test, feature = "check"))]
use std::collections::HashMap;

// ---------------------------------------------------------------- lock ranks

/// A position in the workspace-wide lock-rank table. Locks must be
/// acquired in strictly ascending rank order; see the module docs and
/// `docs/CONCURRENCY.md` for the table itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRank {
    /// Numeric rank. Gaps between assigned ranks are deliberate: future
    /// locks slot in without renumbering the table.
    pub rank: u16,
    /// Human-readable lock name, used in every diagnostic.
    pub name: &'static str,
}

impl LockRank {
    /// Define a rank-table entry.
    pub const fn new(rank: u16, name: &'static str) -> Self {
        LockRank { rank, name }
    }
}

/// Store-layer entries of the rank table. The engine-side entries
/// (scheduler state, job events, chunk results, engine metrics, worker
/// handles) live in `fuzzy_prophet::sync`, which re-exports these so one
/// module shows the whole table.
pub mod rank {
    use super::LockRank;

    /// The in-flight claim table (`SharedBasisStore`'s pending-slot map).
    /// Held across slot-state and entry-table acquisitions: claim, publish
    /// and clear all serialize on it, so it ranks below both.
    pub const INFLIGHT_TABLE: LockRank = LockRank::new(30, "store inflight table");
    /// One pending slot's state cell (owner/waiter hand-off).
    pub const INFLIGHT_SLOT: LockRank = LockRank::new(40, "store inflight slot");
    /// The store's global metadata mutex: stamp allocation, the
    /// point→(stamp, shard, matchability) index, and the stamp-ordered
    /// eviction queues. Held across shard acquisitions during insert,
    /// restore and clear, so it ranks below every shard lock.
    pub const STORE_META: LockRank = LockRank::new(45, "basis store meta");
    /// The per-shard basis-entry tables (`RwLock` each). One rank-table
    /// entry per shard, in shard-index order: paths that take several
    /// shards (insert's victim+target pair, the scan's all-shard read
    /// phase, restore/clear) acquire them strictly by ascending index,
    /// so the checker proves the multi-shard protocols deadlock-free
    /// exactly like any other nesting.
    pub const STORE_SHARDS: [LockRank; super::MAX_SHARDS] = [
        LockRank::new(50, "basis store shard 0"),
        LockRank::new(51, "basis store shard 1"),
        LockRank::new(52, "basis store shard 2"),
        LockRank::new(53, "basis store shard 3"),
        LockRank::new(54, "basis store shard 4"),
        LockRank::new(55, "basis store shard 5"),
        LockRank::new(56, "basis store shard 6"),
        LockRank::new(57, "basis store shard 7"),
        LockRank::new(58, "basis store shard 8"),
        LockRank::new(59, "basis store shard 9"),
        LockRank::new(60, "basis store shard 10"),
        LockRank::new(61, "basis store shard 11"),
        LockRank::new(62, "basis store shard 12"),
        LockRank::new(63, "basis store shard 13"),
        LockRank::new(64, "basis store shard 14"),
        LockRank::new(65, "basis store shard 15"),
    ];
    /// The store's counter ledger (hits/misses/waits/evictions): a leaf
    /// bumped at the end of scans and inserts, above the shard ranks so
    /// accounting is legal while shard guards are still held.
    pub const STORE_STATS: LockRank = LockRank::new(67, "basis store stats");
}

/// Upper bound on [`SharedBasisStore`](crate::store::SharedBasisStore)
/// shard count: one rank-table entry exists per shard
/// ([`rank::STORE_SHARDS`]), so the count is a static property of the
/// lock table, not a runtime knob that could outgrow it.
pub const MAX_SHARDS: usize = 16;

#[cfg(any(test, feature = "check"))]
thread_local! {
    /// Ranks this thread currently holds, in acquisition order. Because
    /// every push is checked to be strictly greater than the current top,
    /// the stack is always sorted and `last()` is the maximum.
    static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
}

/// RAII token recording one held rank on the thread-local stack.
/// Zero-sized and inert without `check`.
struct RankToken {
    rank: LockRank,
}

impl RankToken {
    #[cfg(any(test, feature = "check"))]
    fn acquire(rank: LockRank) -> Self {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(top) = held.last() {
                assert!(
                    rank.rank > top.rank,
                    "lock-order violation: acquiring `{}` (rank {}) while holding `{}` (rank {}) \
                     — locks must be acquired in strictly ascending rank order \
                     (see docs/CONCURRENCY.md)",
                    rank.name,
                    rank.rank,
                    top.name,
                    top.rank,
                );
            }
            held.push(rank);
        });
        RankToken { rank }
    }

    #[cfg(not(any(test, feature = "check")))]
    #[inline(always)]
    fn acquire(rank: LockRank) -> Self {
        RankToken { rank }
    }
}

#[cfg(any(test, feature = "check"))]
impl Drop for RankToken {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards may drop out of acquisition order; release the most
            // recent occurrence of this rank.
            if let Some(pos) = held.iter().rposition(|r| r.rank == self.rank.rank) {
                held.remove(pos);
            }
        });
    }
}

/// Panic naming the poisoned lock. A poisoned lock means another thread
/// panicked while holding it; propagating with the lock's identity turns
/// an anonymous `PoisonError` unwind into an actionable diagnostic.
#[cold]
fn poisoned(rank: LockRank) -> ! {
    panic!(
        "lock `{}` (rank {}) poisoned: a thread panicked while holding it",
        rank.name, rank.rank
    );
}

// -------------------------------------------------------------- OrderedMutex

/// A [`Mutex`] tagged with a [`LockRank`]: acquisition order is checked
/// under `cfg(any(test, feature = "check"))`, poison panics always name
/// the lock. Transparent passthrough otherwise.
pub struct OrderedMutex<T> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` under `rank`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        OrderedMutex {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// This lock's rank-table entry.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire, checking rank order before blocking (a violation panics
    /// with both lock names instead of deadlocking).
    ///
    /// In checked builds the acquisition first tries the lock without
    /// blocking; on contention the wait is reported to the thread's
    /// installed tracer as a [`crate::trace::TraceEventKind::LockWait`]
    /// span — the flight recorder's lock-wait edges. Unchecked builds
    /// go straight to the blocking acquire.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = RankToken::acquire(self.rank);
        #[cfg(any(test, feature = "check"))]
        let wait = match self.inner.try_lock() {
            Ok(inner) => return OrderedMutexGuard { inner, token },
            Err(std::sync::TryLockError::WouldBlock) => crate::trace::lock_wait_start(self.rank),
            // Poisoned: fall through to the blocking acquire, which
            // reports the poison with the lock's name.
            Err(std::sync::TryLockError::Poisoned(_)) => None,
        };
        match self.inner.lock() {
            Ok(inner) => {
                #[cfg(any(test, feature = "check"))]
                crate::trace::lock_wait_end(self.rank, wait);
                OrderedMutexGuard { inner, token }
            }
            Err(_) => poisoned(self.rank),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard of an [`OrderedMutex`]; releases the held-rank record on drop.
pub struct OrderedMutexGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    token: RankToken,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ------------------------------------------------------------ OrderedCondvar

/// A [`Condvar`] that waits on [`OrderedMutex`] guards. While the wait
/// has the lock released, the lock's rank is popped from the held stack —
/// so a waiting thread's other acquisitions are checked against what it
/// actually holds.
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        OrderedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Atomically release the guard's lock, wait for a notification, and
    /// re-acquire (re-recording the rank).
    pub fn wait<'a, T>(&self, guard: OrderedMutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
        let OrderedMutexGuard { inner, token } = guard;
        let rank = token.rank;
        // In unchecked builds the token is a unit struct with no Drop
        // impl, and clippy notices; in checked builds this pops the rank
        // for the duration of the wait.
        #[allow(clippy::drop_non_drop)]
        drop(token);
        match self.inner.wait(inner) {
            Ok(inner) => OrderedMutexGuard {
                inner,
                token: RankToken::acquire(rank),
            },
            Err(_) => poisoned(rank),
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl Default for OrderedCondvar {
    fn default() -> Self {
        OrderedCondvar::new()
    }
}

impl fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("OrderedCondvar")
    }
}

// ------------------------------------------------------------- OrderedRwLock

/// An [`RwLock`] tagged with a [`LockRank`]. Both read and write
/// acquisitions count against the rank order: a same-thread recursive
/// read would deadlock-or-not at std's whim, so the checker rejects it
/// like any other non-ascending acquisition.
pub struct OrderedRwLock<T> {
    rank: LockRank,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wrap `value` under `rank`.
    pub const fn new(rank: LockRank, value: T) -> Self {
        OrderedRwLock {
            rank,
            inner: RwLock::new(value),
        }
    }

    /// This lock's rank-table entry.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Shared acquisition, rank-checked.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        let token = RankToken::acquire(self.rank);
        match self.inner.read() {
            Ok(inner) => OrderedReadGuard { inner, token },
            Err(_) => poisoned(self.rank),
        }
    }

    /// Exclusive acquisition, rank-checked.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        let token = RankToken::acquire(self.rank);
        match self.inner.write() {
            Ok(inner) => OrderedWriteGuard { inner, token },
            Err(_) => poisoned(self.rank),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard of an [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    #[allow(dead_code)] // held for its Drop (rank release) only
    token: RankToken,
}

impl<T> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard of an [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    #[allow(dead_code)] // held for its Drop (rank release) only
    token: RankToken,
}

impl<T> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// -------------------------------------------------------------- claim ledger

/// The claim-protocol state machine, tracked per key. The legal walk for
/// one claim is **claimed → simulated → published → released**; the only
/// legal shortcut is claimed → released (cancellation: the owner failed
/// or a `clear` detached the slot before any result existed). Everything
/// else — claiming a claimed key, simulating or publishing without a
/// claim, publishing twice, releasing between simulate and publish — is a
/// protocol violation and panics under `cfg(any(test, feature =
/// "check"))`. Without `check` the ledger is a zero-sized no-op, so the
/// hooks cost nothing in release.
pub struct ClaimLedger<K> {
    #[cfg(any(test, feature = "check"))]
    states: Mutex<HashMap<K, ClaimState>>,
    #[cfg(not(any(test, feature = "check")))]
    _marker: std::marker::PhantomData<fn(K)>,
}

/// Where one claim stands in the claimed → simulated → published walk.
#[cfg(any(test, feature = "check"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClaimState {
    Claimed,
    Simulated,
    Published,
}

impl<K> Default for ClaimLedger<K> {
    fn default() -> Self {
        ClaimLedger::new()
    }
}

impl<K> ClaimLedger<K> {
    /// An empty ledger.
    pub fn new() -> Self {
        ClaimLedger {
            #[cfg(any(test, feature = "check"))]
            states: Mutex::new(HashMap::new()),
            #[cfg(not(any(test, feature = "check")))]
            _marker: std::marker::PhantomData,
        }
    }
}

#[cfg(any(test, feature = "check"))]
impl<K: std::hash::Hash + Eq + Clone + fmt::Debug> ClaimLedger<K> {
    fn states(&self) -> MutexGuard<'_, HashMap<K, ClaimState>> {
        // The ledger's own mutex is a checker internal, acquired and
        // released leaf-style with no other ledger/lock acquisition
        // nested inside, so it carries no rank of its own.
        self.states.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A claim was granted: `key` must not already be claimed.
    pub fn on_claimed(&self, key: &K) {
        let prior = self.states().insert(key.clone(), ClaimState::Claimed);
        assert!(
            prior.is_none(),
            "claim-protocol violation: point {key:?} claimed while already {prior:?} \
             — at most one live claim per point",
        );
    }

    /// The owner finished computing `key`'s result (simulation or remap):
    /// legal only from `Claimed`.
    pub fn on_simulated(&self, key: &K) {
        let mut states = self.states();
        match states.get_mut(key) {
            Some(state @ ClaimState::Claimed) => *state = ClaimState::Simulated,
            other => panic!(
                "claim-protocol violation: point {key:?} simulated while {other:?} \
                 — simulate requires a live unsimulated claim",
            ),
        }
    }

    /// The owner published `key`'s result: legal only from `Simulated`,
    /// and therefore at most once per claim (a double publish finds
    /// `Published`, not `Simulated`).
    pub fn on_published(&self, key: &K) {
        let mut states = self.states();
        match states.get_mut(key) {
            Some(state @ ClaimState::Simulated) => *state = ClaimState::Published,
            other => panic!(
                "claim-protocol violation: point {key:?} published while {other:?} \
                 — publish must follow simulate exactly once",
            ),
        }
    }

    /// The claim was released (slot removed). Legal from `Published`
    /// (normal completion) or `Claimed` (cancellation before any result);
    /// releasing from `Simulated` means a computed result was dropped
    /// between simulate and publish — the protocol requires publish
    /// before release.
    pub fn on_released(&self, key: &K) {
        match self.states().remove(key) {
            Some(ClaimState::Published) | Some(ClaimState::Claimed) => {}
            other => panic!(
                "claim-protocol violation: point {key:?} released while {other:?} \
                 — a simulated claim must publish before release",
            ),
        }
    }
}

#[cfg(not(any(test, feature = "check")))]
impl<K> ClaimLedger<K> {
    /// No-op without `check`.
    #[inline(always)]
    pub fn on_claimed(&self, _key: &K) {}
    /// No-op without `check`.
    #[inline(always)]
    pub fn on_simulated(&self, _key: &K) {}
    /// No-op without `check`.
    #[inline(always)]
    pub fn on_published(&self, _key: &K) {}
    /// No-op without `check`.
    #[inline(always)]
    pub fn on_released(&self, _key: &K) {}
}

impl<K> fmt::Debug for ClaimLedger<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ClaimLedger")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    const LOW: LockRank = LockRank::new(10, "test low");
    const MID: LockRank = LockRank::new(20, "test mid");
    const HIGH: LockRank = LockRank::new(90, "test high");

    fn panic_message(result: std::thread::Result<()>) -> String {
        let payload = result.expect_err("expected a checker panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn ascending_acquisition_is_allowed() {
        let low = OrderedMutex::new(LOW, 1);
        let mid = OrderedMutex::new(MID, 2);
        let high = OrderedRwLock::new(HIGH, 3);
        let a = low.lock();
        let b = mid.lock();
        let c = high.read();
        assert_eq!(*a + *b + *c, 6);
    }

    /// The checker is untrusted until it catches a seeded bug: acquiring
    /// against rank order must panic with both lock names.
    #[test]
    fn rank_inversion_panics_with_both_names() {
        let low = OrderedMutex::new(LOW, ());
        let high = OrderedMutex::new(HIGH, ());
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _h = high.lock();
            let _l = low.lock(); // inversion: 10 after 90
        })));
        assert!(msg.contains("lock-order violation"), "got: {msg}");
        assert!(
            msg.contains("test low") && msg.contains("test high"),
            "got: {msg}"
        );
    }

    #[test]
    fn equal_rank_reacquisition_panics() {
        let a = OrderedMutex::new(MID, ());
        let b = OrderedMutex::new(LockRank::new(MID.rank, "test mid twin"), ());
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _a = a.lock();
            let _b = b.lock(); // same rank: not strictly ascending
        })));
        assert!(msg.contains("lock-order violation"), "got: {msg}");
    }

    #[test]
    fn rwlock_write_after_higher_read_panics() {
        let high = OrderedRwLock::new(HIGH, ());
        let low = OrderedRwLock::new(LOW, ());
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _r = high.read();
            let _w = low.write();
        })));
        assert!(msg.contains("lock-order violation"), "got: {msg}");
    }

    /// Dropping guards out of acquisition order must release the right
    /// ranks: after dropping the lower guard first, a fresh mid-rank
    /// acquisition is still judged against the remaining (higher) hold.
    #[test]
    fn out_of_order_guard_drops_release_correct_ranks() {
        let low = OrderedMutex::new(LOW, ());
        let high = OrderedMutex::new(HIGH, ());
        let mid = OrderedMutex::new(MID, ());
        let l = low.lock();
        let h = high.lock();
        drop(l); // out of order: low released while high still held
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _m = mid.lock(); // still a violation: high (90) is held
        })));
        assert!(msg.contains("test high"), "got: {msg}");
        drop(h);
        let _m = mid.lock(); // now fine
    }

    /// A condvar wait releases the lock — and must release its rank, so
    /// the notifying thread's interplay stays deadlock-diagnosable and
    /// the woken thread re-records the rank on re-acquisition.
    #[test]
    fn condvar_wait_releases_and_reacquires_rank() {
        let pair = Arc::new((OrderedMutex::new(MID, false), OrderedCondvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut guard = lock.lock();
                while !*guard {
                    guard = cv.wait(guard);
                }
                // Rank was re-recorded on wake: a lower acquisition still
                // trips the checker.
                let low = OrderedMutex::new(LOW, ());
                let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
                    let _l = low.lock();
                })));
                assert!(msg.contains("lock-order violation"), "got: {msg}");
            })
        };
        {
            let (lock, cv) = &*pair;
            let mut guard = lock.lock();
            *guard = true;
            drop(guard);
            cv.notify_all();
        }
        waiter.join().expect("waiter thread");
    }

    #[test]
    fn poisoned_lock_names_itself() {
        let lock = Arc::new(OrderedMutex::new(LockRank::new(70, "poison probe"), ()));
        let poisoner = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = poisoner.lock();
            panic!("poison the lock");
        })
        .join();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _g = lock.lock();
        })));
        assert!(
            msg.contains("poison probe") && msg.contains("rank 70"),
            "poison panic must name the lock: {msg}"
        );
    }

    #[test]
    fn claim_ledger_accepts_the_legal_walks() {
        let ledger: ClaimLedger<u32> = ClaimLedger::new();
        // Full walk.
        ledger.on_claimed(&1);
        ledger.on_simulated(&1);
        ledger.on_published(&1);
        ledger.on_released(&1);
        // Cancellation: claimed → released.
        ledger.on_claimed(&1);
        ledger.on_released(&1);
        // Re-claim after release is a fresh claim.
        ledger.on_claimed(&1);
        ledger.on_simulated(&1);
        ledger.on_published(&1);
        ledger.on_released(&1);
    }

    /// The seeded double-publish: the second publish finds `Published`,
    /// not `Simulated`, and the ledger panics naming the point.
    #[test]
    fn double_publish_trips_the_ledger() {
        let ledger: ClaimLedger<u32> = ClaimLedger::new();
        ledger.on_claimed(&7);
        ledger.on_simulated(&7);
        ledger.on_published(&7);
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            ledger.on_published(&7);
        })));
        assert!(msg.contains("claim-protocol violation"), "got: {msg}");
        assert!(msg.contains('7'), "got: {msg}");
    }

    #[test]
    fn publish_without_claim_trips_the_ledger() {
        let ledger: ClaimLedger<u32> = ClaimLedger::new();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            ledger.on_published(&3);
        })));
        assert!(msg.contains("claim-protocol violation"), "got: {msg}");
    }

    #[test]
    fn double_claim_trips_the_ledger() {
        let ledger: ClaimLedger<u32> = ClaimLedger::new();
        ledger.on_claimed(&9);
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            ledger.on_claimed(&9);
        })));
        assert!(msg.contains("at most one live claim"), "got: {msg}");
    }

    #[test]
    fn release_between_simulate_and_publish_trips_the_ledger() {
        let ledger: ClaimLedger<u32> = ClaimLedger::new();
        ledger.on_claimed(&4);
        ledger.on_simulated(&4);
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            ledger.on_released(&4);
        })));
        assert!(msg.contains("must publish before release"), "got: {msg}");
    }
}
