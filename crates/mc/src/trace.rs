//! Flight recorder and latency telemetry: the observability layer shared
//! by the store (this crate) and the scheduler/engine tier
//! (`fuzzy_prophet`, which re-exports this module as
//! `fuzzy_prophet::trace` — the same layering as [`crate::sync`]).
//!
//! Three pieces:
//!
//! * **[`Tracer`]** — a cheaply-cloneable handle over an optional
//!   private recorder. With [`TraceConfig::Off`] the handle is `None`: no
//!   ring is allocated, every record call is one branch, and
//!   [`Tracer::now`] never reads the clock — a true passthrough.
//!   With [`TraceConfig::Ring`] events land in a sharded, bounded ring
//!   buffer (oldest events overwritten once a shard fills; drops are
//!   counted, never blocked on).
//! * **[`TraceEvent`]** — one typed, `Copy` record: a kind
//!   ([`TraceEventKind`]), a start timestamp and span duration in
//!   nanoseconds since the recorder's epoch, and the job id / chunk
//!   sequence / worker id it belongs to (sentinels [`NO_JOB`],
//!   [`NO_CHUNK`], [`NO_WORKER`] where not applicable).
//! * **[`LatencyHistogram`]** — log-bucketed (power-of-two bucket
//!   boundaries, one bucket per bit length) latency counts with
//!   deterministic merge/subtract and monotone percentile accessors.
//!   The bucket table is *fixed*, so histograms recorded by different
//!   workers, engines, or processes merge without renormalization.
//!
//! **Determinism.** Events observe, never decide: nothing in the
//! evaluation pipeline reads the recorder, timestamps never feed
//! scheduling or matching decisions, and the chaos suite
//! (`tests/chaos.rs`) proves answers bit-identical with tracing on.
//! The clock ([`TraceClock`]) is this module's single `Instant` read —
//! the `analysis` wall-clock lint permits `Instant::now()` only in
//! `metrics.rs`, `trace.rs`, and the bench crate.
//!
//! **Lock-wait edges.** Under `cfg(any(test, feature = "check"))`,
//! [`crate::sync::OrderedMutex::lock`] first tries the lock without
//! blocking; on contention it records a [`TraceEventKind::LockWait`]
//! span against the thread's installed tracer (see [`install`]). The
//! ring's own shard locks rank at the very top of the lock-rank table
//! ([`TRACE_RING`], rank 90) so recording is legal while holding any
//! other lock, and the hook skips rank-90 locks so tracing the ring
//! never recurses into itself.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::sync::{LockRank, OrderedMutex};

/// Rank-table entry for the trace ring's shard locks (and nothing
/// else): the table's strict leaf, above every scheduler/store/engine
/// lock, so an event can be recorded while holding any of them.
pub const TRACE_RING: LockRank = LockRank::new(90, "trace ring shard");

/// Sentinel job id for events not tied to a job.
pub const NO_JOB: u64 = u64::MAX;
/// Sentinel chunk sequence for events not tied to a chunk.
pub const NO_CHUNK: u64 = u64::MAX;
/// Sentinel worker id for events recorded off the worker pool (a job
/// driver helping from the caller's thread, or an external session).
pub const NO_WORKER: u32 = u32::MAX;

/// Number of priority lanes in the queue-wait telemetry (High, Normal,
/// Low — the scheduler maps its `Priority` onto these indices).
pub const QUEUE_LANES: usize = 3;

// ----------------------------------------------------------------- the clock

/// The trace time source: a monotonic epoch captured at recorder
/// construction, read as nanoseconds-since-epoch. This is the
/// observability layer's one wall-clock boundary besides
/// `metrics::Stopwatch`; the `analysis` lint confines `Instant::now()`
/// to exactly these files.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// Capture the epoch now.
    pub fn new() -> Self {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// Monotonic nanoseconds since the epoch.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

// -------------------------------------------------------------- event model

/// What happened. Span kinds carry a nonzero `dur_nanos` on their
/// [`TraceEvent`]; instant kinds record `dur_nanos == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// A job entered the scheduler (instant, submit-side).
    JobSubmit,
    /// A job's driver began executing (instant).
    JobStart,
    /// A job finished — result or error published (instant).
    JobFinish,
    /// A job's cancel flag was raised (instant). Chunks observe the
    /// flag before running, so no `ChunkRun` event starts after this.
    JobCancel,
    /// A chunk was pushed onto the priority queue (instant).
    ChunkEnqueue,
    /// A chunk was popped off the priority queue (instant); queue wait
    /// feeds the per-priority queue-wait histograms.
    ChunkDequeue,
    /// A chunk executed on a worker (span: the chunk's service time).
    ChunkRun,
    /// Batch driver phase: fingerprint probes fanned out (span).
    PhaseProbe,
    /// Batch driver phase: the correlation match scan (span).
    PhaseMatch,
    /// Batch driver phase: hit re-mapping fanned out (span).
    PhaseRemap,
    /// Batch driver phase: miss simulation fanned out (span).
    PhaseSimulate,
    /// Batch driver phase: in-order publication of results (span).
    PhasePublish,
    /// A store claim was taken or resolved (instant).
    StoreClaim {
        /// Which basis-store shard holds the claimed point
        /// (`stable_hash % shard_count`, platform-stable).
        shard: u16,
    },
    /// A session blocked on another session's in-flight simulation
    /// (span: the wait).
    StoreWait,
    /// An owned claim published its samples to the store (instant).
    StorePublish,
    /// A basis entry was evicted to make room (instant).
    StoreEvict {
        /// Which basis-store shard the victim entry lived in.
        shard: u16,
    },
    /// A rank-ordered lock was contended (span: the wait). Only
    /// recorded under `cfg(any(test, feature = "check"))`, where the
    /// ordered wrappers try-lock first.
    LockWait {
        /// The contended lock's rank-table name.
        lock: &'static str,
    },
}

impl TraceEventKind {
    /// Stable short name, used by the Chrome trace export and logs.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::JobSubmit => "job_submit",
            TraceEventKind::JobStart => "job_start",
            TraceEventKind::JobFinish => "job_finish",
            TraceEventKind::JobCancel => "job_cancel",
            TraceEventKind::ChunkEnqueue => "chunk_enqueue",
            TraceEventKind::ChunkDequeue => "chunk_dequeue",
            TraceEventKind::ChunkRun => "chunk_run",
            TraceEventKind::PhaseProbe => "phase_probe",
            TraceEventKind::PhaseMatch => "phase_match",
            TraceEventKind::PhaseRemap => "phase_remap",
            TraceEventKind::PhaseSimulate => "phase_simulate",
            TraceEventKind::PhasePublish => "phase_publish",
            TraceEventKind::StoreClaim { .. } => "store_claim",
            TraceEventKind::StoreWait => "store_wait",
            TraceEventKind::StorePublish => "store_publish",
            TraceEventKind::StoreEvict { .. } => "store_evict",
            TraceEventKind::LockWait { .. } => "lock_wait",
        }
    }
}

/// One flight-recorder record. `Copy` and fixed-size: a ring shard is a
/// flat `Vec<TraceEvent>` with no per-event allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time, nanoseconds since the recorder's epoch.
    pub nanos: u64,
    /// Span duration in nanoseconds; `0` for instant events.
    pub dur_nanos: u64,
    /// Owning job id, or [`NO_JOB`].
    pub job: u64,
    /// Chunk sequence within the job, or [`NO_CHUNK`].
    pub chunk: u64,
    /// Pool worker that recorded the event, or [`NO_WORKER`].
    pub worker: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

// ---------------------------------------------------------------- histograms

/// Number of log buckets: bucket `i` holds durations whose bit length
/// is `i` (bucket 0 holds exactly 0 ns), so bucket 39 tops out at
/// 2³⁹−1 ns ≈ 550 s — beyond any latency this system produces; larger
/// values clamp into it.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Map a duration to its bucket: the bit length of the nanosecond
/// count, clamped to the table.
#[inline]
fn bucket_of(nanos: u64) -> usize {
    ((u64::BITS - nanos.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive) of bucket `i` in nanoseconds. Percentiles
/// report this ceiling, so p50 ≤ p90 ≤ p99 holds *by construction* —
/// cumulative counts are monotone over a fixed, ordered bucket table.
#[inline]
fn bucket_ceiling(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// A log-bucketed latency histogram over the fixed
/// [`HISTOGRAM_BUCKETS`] power-of-two table.
///
/// Because every histogram shares the same bucket boundaries,
/// [`merge`](Self::merge) is element-wise addition and
/// [`since`](Self::since) element-wise subtraction — deterministic and
/// associative, exactly like the scalar counters in `EngineMetrics`
/// (which embeds two of these for the per-point probe/simulate
/// latency percentile block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    // Manual: std derives array Default only up to 32 elements.
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one observation of `nanos`.
    pub fn record(&mut self, nanos: u64) {
        self.counts[bucket_of(nanos)] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Raw bucket counts, index = bit length of the duration.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Add `other`'s counts into `self` (deterministic: same fixed
    /// bucket table on both sides).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Bucket-wise difference `self − baseline` (saturating), the
    /// histogram of observations recorded since `baseline` was
    /// snapshotted.
    pub fn since(&self, baseline: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for (i, (a, b)) in self.counts.iter().zip(baseline.counts.iter()).enumerate() {
            out.counts[i] = a.saturating_sub(*b);
        }
        out
    }

    /// The value (bucket ceiling, ns) at or below which `permille`/1000
    /// of observations fall. Returns 0 for an empty histogram.
    /// Monotone in `permille` by construction.
    pub fn percentile(&self, permille: u32) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let permille = u64::from(permille.min(1000));
        let target = ((total * permille).div_ceil(1000)).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_ceiling(i);
            }
        }
        bucket_ceiling(HISTOGRAM_BUCKETS - 1)
    }

    /// Median (ns, bucket ceiling).
    pub fn p50(&self) -> u64 {
        self.percentile(500)
    }

    /// 90th percentile (ns, bucket ceiling).
    pub fn p90(&self) -> u64 {
        self.percentile(900)
    }

    /// 95th percentile (ns, bucket ceiling).
    pub fn p95(&self) -> u64 {
        self.percentile(950)
    }

    /// 99th percentile (ns, bucket ceiling).
    pub fn p99(&self) -> u64 {
        self.percentile(990)
    }
}

/// Lock-free histogram cell: the in-recorder form, updated by workers
/// with relaxed bucket increments and snapshotted into a
/// [`LatencyHistogram`] value on read.
struct AtomicHistogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, nanos: u64) {
        self.counts[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for (i, c) in self.counts.iter().enumerate() {
            out.counts[i] = c.load(Ordering::Relaxed);
        }
        out
    }
}

// ------------------------------------------------------------- configuration

/// How much a tier records. `Off` is the default for bare engines (the
/// blocking reference tier); the `Prophet` service tier defaults to
/// `Ring` via `SchedulerConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// No recorder at all: no allocation, record calls are one branch,
    /// the clock is never read.
    #[default]
    Off,
    /// Flight recorder on: a sharded ring holding up to `capacity`
    /// events in total (oldest overwritten first, drops counted).
    Ring {
        /// Total event capacity across all shards.
        capacity: usize,
    },
}

impl TraceConfig {
    /// The service tier's default ring size: 64Ki events (~3 MiB),
    /// enough for every chunk of a multi-thousand-point sweep.
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// `Ring` at the default capacity.
    pub fn ring() -> Self {
        TraceConfig::Ring {
            capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }
}

// ------------------------------------------------------------------ recorder

/// Number of independent ring shards; each worker thread sticks to one
/// shard, so recording contends only when worker count exceeds this.
const SHARDS: usize = 8;

/// One bounded ring shard: a flat event vector overwritten
/// oldest-first once full.
struct RingShard {
    events: Vec<TraceEvent>,
    /// Next overwrite position once `events` reached capacity.
    head: usize,
    capacity: usize,
}

impl RingShard {
    fn push(&mut self, event: TraceEvent) -> bool {
        if self.events.len() < self.capacity {
            self.events.push(event);
            false
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            true
        }
    }
}

/// Aggregated telemetry read out of a [`Tracer`]: the latency
/// histograms plus the scheduler gauges. The service facade augments
/// this with store gauges into its `TelemetrySnapshot`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceTelemetry {
    /// Chunk service time (the `ChunkRun` span).
    pub chunk_service: LatencyHistogram,
    /// Queue wait (enqueue → dequeue) per priority lane:
    /// `[High, Normal, Low]`.
    pub queue_wait: [LatencyHistogram; QUEUE_LANES],
    /// Driver-side correlation match-scan waves.
    pub match_scan: LatencyHistogram,
    /// Cross-session in-flight store waits.
    pub store_wait: LatencyHistogram,
    /// Chunks currently queued.
    pub queue_depth: usize,
    /// High-watermark of `queue_depth` since recorder creation.
    pub max_queue_depth: usize,
    /// Workers currently executing a task.
    pub workers_busy: usize,
    /// Events accepted by the ring (including later-overwritten ones).
    pub events_recorded: u64,
    /// Events that overwrote an older one (ring at capacity).
    pub events_dropped: u64,
}

/// The flight recorder proper: clock, ring shards, histograms, gauges.
/// Always reached through a [`Tracer`] handle.
struct Recorder {
    clock: TraceClock,
    shards: [OrderedMutex<RingShard>; SHARDS],
    recorded: AtomicU64,
    dropped: AtomicU64,
    chunk_service: AtomicHistogram,
    queue_wait: [AtomicHistogram; QUEUE_LANES],
    match_scan: AtomicHistogram,
    store_wait: AtomicHistogram,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
    workers_busy: AtomicUsize,
}

impl Recorder {
    fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Recorder {
            clock: TraceClock::new(),
            shards: std::array::from_fn(|_| {
                OrderedMutex::new(
                    TRACE_RING,
                    RingShard {
                        events: Vec::new(),
                        head: 0,
                        capacity: per_shard,
                    },
                )
            }),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            chunk_service: AtomicHistogram::new(),
            queue_wait: std::array::from_fn(|_| AtomicHistogram::new()),
            match_scan: AtomicHistogram::new(),
            store_wait: AtomicHistogram::new(),
            queue_depth: AtomicUsize::new(0),
            max_queue_depth: AtomicUsize::new(0),
            workers_busy: AtomicUsize::new(0),
        }
    }

    fn record(&self, event: TraceEvent) {
        let shard = &self.shards[thread_slot() % SHARDS];
        let overwrote = shard.lock().push(event);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if overwrote {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ------------------------------------------------------------- thread locals

/// Each thread gets a stable slot index on first record, spreading
/// threads across ring shards without hashing or contention.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Pool worker id for events recorded from this thread.
    static WORKER: Cell<u32> = const { Cell::new(NO_WORKER) };
    /// The tracer lock-wait edges report to (see [`install`]).
    static CURRENT: RefCell<Tracer> = const { RefCell::new(Tracer(None)) };
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| {
        if slot.get() == usize::MAX {
            slot.set(NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed));
        }
        slot.get()
    })
}

/// Tag this thread's recorded events with pool worker id `id`
/// (scheduler workers call this once at spawn). Returns the previous
/// id so scoped helpers can restore it.
pub fn set_worker(id: u32) -> u32 {
    WORKER.with(|w| w.replace(id))
}

/// Install `tracer` as this thread's lock-wait sink: contended
/// [`OrderedMutex`] acquisitions (checked builds only) record
/// [`TraceEventKind::LockWait`] spans against it. Returns the
/// previously installed tracer so scoped callers can restore it.
pub fn install(tracer: &Tracer) -> Tracer {
    CURRENT.with(|current| current.replace(tracer.clone()))
}

/// Lock-wait hook, called by [`crate::sync::OrderedMutex::lock`] after
/// a failed `try_lock` (checked builds only): the wait's start
/// timestamp, or `None` when nothing is recording. Rank-90 locks (the
/// trace ring itself) are skipped so recording never recurses.
#[cfg(any(test, feature = "check"))]
pub(crate) fn lock_wait_start(rank: LockRank) -> Option<u64> {
    if rank.rank >= TRACE_RING.rank {
        return None;
    }
    CURRENT.with(|current| {
        let tracer = current.borrow();
        if tracer.is_enabled() {
            Some(tracer.now())
        } else {
            None
        }
    })
}

/// Second half of the lock-wait hook: the lock was acquired after a
/// recorded contention, so emit the `LockWait` span.
#[cfg(any(test, feature = "check"))]
pub(crate) fn lock_wait_end(rank: LockRank, start: Option<u64>) {
    let Some(start) = start else { return };
    CURRENT.with(|current| {
        current.borrow().span(
            TraceEventKind::LockWait { lock: rank.name },
            NO_JOB,
            NO_CHUNK,
            start,
        );
    });
}

// -------------------------------------------------------------------- tracer

/// Cheaply-cloneable handle to a shared (private) recorder — or to nothing
/// ([`TraceConfig::Off`]), in which case every method is a no-op
/// behind a single `Option` branch and no ring exists anywhere.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Recorder>>);

impl Tracer {
    /// Build from a [`TraceConfig`]: `Off` allocates nothing.
    pub fn new(config: TraceConfig) -> Self {
        match config {
            TraceConfig::Off => Tracer(None),
            TraceConfig::Ring { capacity } => Tracer(Some(Arc::new(Recorder::new(capacity)))),
        }
    }

    /// The disabled tracer (same as `new(TraceConfig::Off)`).
    pub fn off() -> Self {
        Tracer(None)
    }

    /// Whether a recorder is attached.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the recorder epoch — or 0 when off, without
    /// touching the clock (span call sites pair `now()` with
    /// [`span`](Self::span), so the off path never reads time).
    pub fn now(&self) -> u64 {
        match &self.0 {
            Some(recorder) => recorder.clock.now_nanos(),
            None => 0,
        }
    }

    /// Record an instant event (zero duration), stamped with this
    /// thread's worker id.
    pub fn instant(&self, kind: TraceEventKind, job: u64, chunk: u64) {
        let Some(recorder) = &self.0 else { return };
        recorder.record(TraceEvent {
            nanos: recorder.clock.now_nanos(),
            dur_nanos: 0,
            job,
            chunk,
            worker: WORKER.with(Cell::get),
            kind,
        });
    }

    /// Record an instant event stamped at an explicit prior clock reading
    /// (a [`now`](Self::now) result) instead of the current time. Used
    /// where the stamp must be ordered against an atomic flag check — a
    /// stamp read *before* a successful not-cancelled check is guaranteed
    /// to sort before the cancel marker recorded after the flag store
    /// (the cancellation ordering argument in `docs/OBSERVABILITY.md`).
    pub fn instant_at(&self, kind: TraceEventKind, job: u64, chunk: u64, nanos: u64) {
        let Some(recorder) = &self.0 else { return };
        recorder.record(TraceEvent {
            nanos,
            dur_nanos: 0,
            job,
            chunk,
            worker: WORKER.with(Cell::get),
            kind,
        });
    }

    /// Record a span that began at `start` (a prior [`now`](Self::now)
    /// reading) and ends now.
    pub fn span(&self, kind: TraceEventKind, job: u64, chunk: u64, start: u64) {
        let Some(recorder) = &self.0 else { return };
        let end = recorder.clock.now_nanos();
        recorder.record(TraceEvent {
            nanos: start,
            dur_nanos: end.saturating_sub(start),
            job,
            chunk,
            worker: WORKER.with(Cell::get),
            kind,
        });
    }

    /// Count a chunk's service time.
    pub fn record_chunk_service(&self, nanos: u64) {
        if let Some(recorder) = &self.0 {
            recorder.chunk_service.record(nanos);
        }
    }

    /// Count a chunk's queue wait in priority lane `lane`
    /// (0 = High, 1 = Normal, 2 = Low; out-of-range clamps to Low).
    pub fn record_queue_wait(&self, lane: usize, nanos: u64) {
        if let Some(recorder) = &self.0 {
            recorder.queue_wait[lane.min(QUEUE_LANES - 1)].record(nanos);
        }
    }

    /// Count one match-scan wave's duration.
    pub fn record_match_scan(&self, nanos: u64) {
        if let Some(recorder) = &self.0 {
            recorder.match_scan.record(nanos);
        }
    }

    /// Count one cross-session in-flight wait.
    pub fn record_store_wait(&self, nanos: u64) {
        if let Some(recorder) = &self.0 {
            recorder.store_wait.record(nanos);
        }
    }

    /// Update the queue-depth gauge (and its high watermark).
    pub fn gauge_queue_depth(&self, depth: usize) {
        if let Some(recorder) = &self.0 {
            recorder.queue_depth.store(depth, Ordering::Relaxed);
            recorder.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        }
    }

    /// A worker began executing a task.
    pub fn worker_busy(&self) {
        if let Some(recorder) = &self.0 {
            recorder.workers_busy.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A worker finished its task.
    pub fn worker_idle(&self) {
        if let Some(recorder) = &self.0 {
            recorder.workers_busy.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Every retained event, merged across shards and sorted by start
    /// time. Empty when off.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(recorder) = &self.0 else {
            return Vec::new();
        };
        let mut all = Vec::new();
        for shard in &recorder.shards {
            let shard = shard.lock();
            // Ring order: head..end is the older half once wrapped.
            all.extend_from_slice(&shard.events[shard.head..]);
            all.extend_from_slice(&shard.events[..shard.head]);
        }
        all.sort_by_key(|e| (e.nanos, e.dur_nanos));
        all
    }

    /// The retained events belonging to job `job`, sorted by start
    /// time (the `JobHandle::trace()` surface).
    pub fn events_for_job(&self, job: u64) -> Vec<TraceEvent> {
        let mut events = self.events();
        events.retain(|e| e.job == job);
        events
    }

    /// Snapshot the histograms and gauges. Default (all-empty) when
    /// off.
    pub fn telemetry(&self) -> TraceTelemetry {
        let Some(recorder) = &self.0 else {
            return TraceTelemetry::default();
        };
        TraceTelemetry {
            chunk_service: recorder.chunk_service.snapshot(),
            queue_wait: std::array::from_fn(|i| recorder.queue_wait[i].snapshot()),
            match_scan: recorder.match_scan.snapshot(),
            store_wait: recorder.store_wait.snapshot(),
            queue_depth: recorder.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: recorder.max_queue_depth.load(Ordering::Relaxed),
            workers_busy: recorder.workers_busy.load(Ordering::Relaxed),
            events_recorded: recorder.recorded.load(Ordering::Relaxed),
            events_dropped: recorder.dropped.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(recorder) => f
                .debug_struct("Tracer")
                .field(
                    "events_recorded",
                    &recorder.recorded.load(Ordering::Relaxed),
                )
                .finish(),
            None => f.write_str("Tracer(off)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_allocates_no_ring_and_records_nothing() {
        let tracer = Tracer::new(TraceConfig::Off);
        assert!(tracer.0.is_none(), "Off must not allocate a recorder");
        assert!(!tracer.is_enabled());
        assert_eq!(tracer.now(), 0, "Off never reads the clock");
        tracer.instant(TraceEventKind::JobSubmit, 1, NO_CHUNK);
        tracer.span(TraceEventKind::ChunkRun, 1, 2, 0);
        tracer.record_chunk_service(100);
        assert!(tracer.events().is_empty());
        assert_eq!(tracer.telemetry().events_recorded, 0);
    }

    #[test]
    fn clock_is_monotone() {
        let clock = TraceClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn events_round_trip_with_worker_and_job_stamps() {
        let tracer = Tracer::new(TraceConfig::Ring { capacity: 64 });
        let prev = set_worker(3);
        let start = tracer.now();
        tracer.instant(TraceEventKind::JobSubmit, 7, NO_CHUNK);
        tracer.span(TraceEventKind::ChunkRun, 7, 2, start);
        set_worker(prev);
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.job, 7);
            assert_eq!(e.worker, 3);
        }
        let runs: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceEventKind::ChunkRun)
            .collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].chunk, 2);
        assert_eq!(tracer.events_for_job(8).len(), 0);
        assert_eq!(tracer.events_for_job(7).len(), 2);
    }

    #[test]
    fn ring_bounds_capacity_and_counts_drops() {
        let tracer = Tracer::new(TraceConfig::Ring { capacity: SHARDS });
        // This thread maps to one shard with capacity 1: the second
        // event overwrites the first.
        tracer.instant(TraceEventKind::JobSubmit, 1, NO_CHUNK);
        tracer.instant(TraceEventKind::JobFinish, 2, NO_CHUNK);
        let events = tracer.events();
        assert_eq!(events.len(), 1, "shard capacity bounds retention");
        assert_eq!(events[0].job, 2, "oldest event overwritten first");
        let telemetry = tracer.telemetry();
        assert_eq!(telemetry.events_recorded, 2);
        assert_eq!(telemetry.events_dropped, 1);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 1, "zero lands in bucket 0");
        assert_eq!(h.buckets()[1], 1, "1 has bit length 1");
        assert_eq!(h.buckets()[2], 2, "2 and 3 have bit length 2");
        assert_eq!(h.buckets()[11], 1, "1024 has bit length 11");
        // Clamp: a value beyond the table lands in the last bucket.
        let mut big = LatencyHistogram::new();
        big.record(u64::MAX);
        assert_eq!(big.buckets()[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn percentiles_are_monotone_and_report_bucket_ceilings() {
        let mut h = LatencyHistogram::new();
        for nanos in [10u64, 20, 30, 1000, 2000, 4000, 100_000, 1_000_000] {
            h.record(nanos);
        }
        let (p50, p90, p95, p99) = (h.p50(), h.p90(), h.p95(), h.p99());
        assert!(
            p50 <= p90 && p90 <= p95 && p95 <= p99,
            "{p50} {p90} {p95} {p99}"
        );
        // Ceilings are 2^i - 1 by construction.
        for p in [p50, p90, p95, p99] {
            assert!(p == 0 || (p + 1).is_power_of_two(), "{p}");
        }
        assert_eq!(h.percentile(0), h.percentile(1));
        assert_eq!(LatencyHistogram::new().p99(), 0, "empty histogram");
    }

    #[test]
    fn histogram_merge_and_since_are_inverse() {
        let mut a = LatencyHistogram::new();
        a.record(5);
        a.record(700);
        let mut b = LatencyHistogram::new();
        b.record(5);
        b.record(1_000_000);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.since(&b), a);
        assert_eq!(merged.since(&a), b);
    }

    #[test]
    fn telemetry_histograms_and_gauges_snapshot() {
        let tracer = Tracer::new(TraceConfig::ring());
        tracer.record_chunk_service(1000);
        tracer.record_queue_wait(0, 50);
        tracer.record_queue_wait(1, 500);
        tracer.record_queue_wait(2, 5000);
        tracer.record_match_scan(250);
        tracer.record_store_wait(123);
        tracer.gauge_queue_depth(4);
        tracer.gauge_queue_depth(9);
        tracer.gauge_queue_depth(2);
        tracer.worker_busy();
        let t = tracer.telemetry();
        assert_eq!(t.chunk_service.count(), 1);
        assert_eq!(t.queue_wait[0].count(), 1);
        assert_eq!(t.queue_wait[1].count(), 1);
        assert_eq!(t.queue_wait[2].count(), 1);
        assert_eq!(t.match_scan.count(), 1);
        assert_eq!(t.store_wait.count(), 1);
        assert_eq!(t.queue_depth, 2);
        assert_eq!(t.max_queue_depth, 9, "watermark survives the drop");
        assert_eq!(t.workers_busy, 1);
        tracer.worker_idle();
        assert_eq!(tracer.telemetry().workers_busy, 0);
    }

    /// Contended ordered-lock acquisition records a `LockWait` span
    /// against the thread's installed tracer (checked builds — this
    /// test module always compiles with `cfg(test)`).
    #[test]
    fn contended_ordered_mutex_records_a_lock_wait_edge() {
        use std::sync::mpsc;

        let tracer = Tracer::new(TraceConfig::ring());
        let lock = Arc::new(OrderedMutex::new(LockRank::new(55, "contended probe"), ()));
        let (held_tx, held_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let holder = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _g = lock.lock();
                held_tx.send(()).expect("signal held");
                release_rx.recv().expect("hold until told");
            })
        };
        held_rx.recv().expect("holder has the lock");
        let prev = install(&tracer);
        // Contended: try_lock fails, the wait is recorded.
        let waiter = {
            let lock = Arc::clone(&lock);
            let tracer = tracer.clone();
            std::thread::spawn(move || {
                install(&tracer);
                let _g = lock.lock();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        release_tx.send(()).expect("release holder");
        holder.join().expect("holder thread");
        waiter.join().expect("waiter thread");
        install(&prev);
        let waits: Vec<_> = tracer
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, TraceEventKind::LockWait { .. }))
            .collect();
        assert_eq!(waits.len(), 1, "one contended acquisition, one edge");
        assert_eq!(
            waits[0].kind,
            TraceEventKind::LockWait {
                lock: "contended probe"
            }
        );
    }
}
