//! The Query Generator: batching instances through the SQL executor.
//!
//! "The sequence of instances is batched and accepted by a Query Generator,
//! which produces a pure TSQL query" (§2). Our pure-TSQL tier is the
//! `prophet-sql` executor; a batch here is *(parameter point, world list)*
//! and its result is a [`SampleSet`]: per-output-column sample vectors
//! across the batch's worlds.

use std::collections::HashMap;

use prophet_data::Value;
use prophet_sql::ast::SelectInto;
use prophet_sql::columnar::{evaluate_select_columns, to_f64_samples, ColumnarStats};
use prophet_sql::error::{SqlError, SqlResult};
use prophet_sql::executor::{evaluate_select_with, WorldRng};
use prophet_sql::vector::{column_to_f64, evaluate_select_block};
use prophet_vg::{SeedManager, VgRegistry};

use crate::aggregate::{SampleStats, Welford};
use crate::instance::ParamPoint;

/// Samples of every scenario output column across a set of worlds, for one
/// parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSet {
    point: ParamPoint,
    columns: Vec<String>,
    samples: HashMap<String, Vec<f64>>,
}

impl SampleSet {
    /// The parameter point these samples belong to.
    pub fn point(&self) -> &ParamPoint {
        &self.point
    }

    /// Output column names in SELECT order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of worlds simulated.
    pub fn world_count(&self) -> usize {
        self.samples.values().next().map(Vec::len).unwrap_or(0)
    }

    /// Samples of one column, world order preserved.
    pub fn samples(&self, column: &str) -> Option<&[f64]> {
        self.samples.get(column).map(Vec::as_slice)
    }

    /// Welford summary of one column.
    pub fn stats(&self, column: &str) -> Option<SampleStats> {
        let xs = self.samples.get(column)?;
        let mut w = Welford::new();
        w.extend(xs);
        Some(w.stats())
    }

    /// Monte Carlo expectation of one column (`EXPECT col`).
    pub fn expect(&self, column: &str) -> Option<f64> {
        self.stats(column).map(|s| s.mean)
    }

    /// Monte Carlo standard deviation (`EXPECT_STDDEV col`).
    pub fn expect_std_dev(&self, column: &str) -> Option<f64> {
        self.stats(column).map(|s| s.std_dev)
    }

    /// Build directly from per-column samples (the fingerprint mapper
    /// synthesizes re-mapped sample sets this way).
    pub fn from_samples(
        point: ParamPoint,
        columns: Vec<String>,
        samples: HashMap<String, Vec<f64>>,
    ) -> Self {
        SampleSet {
            point,
            columns,
            samples,
        }
    }

    /// Merge another sample set for the *same point* (progressive
    /// refinement appends batches of worlds).
    pub fn absorb(&mut self, other: &SampleSet) {
        debug_assert_eq!(self.point, other.point, "absorb requires matching points");
        // analysis:allow(map-iter): per-key merge — each column extends independently, so visit order is unobservable
        for (col, dst) in self.samples.iter_mut() {
            if let Some(src) = other.samples.get(col) {
                dst.extend_from_slice(src);
            }
        }
    }
}

/// Simulate one parameter point over the given worlds.
///
/// Each world `w` evaluates the scenario SELECT under *per-call* VG
/// substreams derived from `(root, w, function, call index)`: the same
/// `worlds` slice against two different points reuses the *same underlying
/// randomness per world index* when `common_random_numbers` is true — the
/// variance-reduction trick that makes outputs of correlated parameter
/// points comparable sample-by-sample (fingerprinting relies on it).
pub fn simulate_point(
    select: &SelectInto,
    registry: &VgRegistry,
    seeds: &SeedManager,
    point: &ParamPoint,
    worlds: &[u64],
    common_random_numbers: bool,
) -> SqlResult<SampleSet> {
    let params = point.to_value_map();
    let columns: Vec<String> = select.items.iter().map(|i| i.alias.clone()).collect();
    let mut samples: HashMap<String, Vec<f64>> = columns
        .iter()
        .map(|c| (c.clone(), Vec::with_capacity(worlds.len())))
        .collect();

    // Under CRN the stream depends only on the world id; otherwise it also
    // mixes the point so distinct points draw independent noise.
    let point_salt = if common_random_numbers {
        0
    } else {
        point.stable_hash()
    };

    for &world in worlds {
        let rng = WorldRng::per_call(*seeds, world ^ point_salt);
        let row = evaluate_select_with(select, registry, &params, rng)?;
        for (name, value) in row {
            let x = match value {
                Value::Null => f64::NAN,
                v => v.as_f64().map_err(SqlError::from)?,
            };
            samples
                .get_mut(&name)
                .expect("invariant: executor rows carry exactly the declared aliases")
                .push(x);
        }
    }
    Ok(SampleSet {
        point: point.clone(),
        columns,
        samples,
    })
}

/// Simulate one parameter point over the given worlds in **one** walk of
/// the scenario SELECT, through `prophet-sql`'s vectorized tier.
///
/// Semantics (seed derivation, CRN point salting, NULL→NaN samples) are
/// identical to [`simulate_point`] — per world, the produced samples are
/// bit-identical — but the executor walks the AST once for the whole world
/// block instead of once per world, and VG functions are invoked through
/// the catalog's batch path.
pub fn simulate_point_block(
    select: &SelectInto,
    registry: &VgRegistry,
    seeds: &SeedManager,
    point: &ParamPoint,
    worlds: &[u64],
    common_random_numbers: bool,
) -> SqlResult<SampleSet> {
    let params = point.to_value_map();
    let point_salt = if common_random_numbers {
        0
    } else {
        point.stable_hash()
    };
    let salted: Vec<u64> = worlds.iter().map(|&w| w ^ point_salt).collect();
    let columns_out = evaluate_select_block(select, registry, &params, *seeds, &salted)?;
    let columns: Vec<String> = columns_out.iter().map(|(name, _)| name.clone()).collect();
    let mut samples: HashMap<String, Vec<f64>> = HashMap::with_capacity(columns.len());
    for (name, column) in columns_out {
        samples.insert(name, column_to_f64(&column)?);
    }
    Ok(SampleSet {
        point: point.clone(),
        columns,
        samples,
    })
}

/// Simulate one parameter point through `prophet-sql`'s **typed columnar**
/// tier: numeric columns stay `f64`/`i64` buffers end to end, so the
/// per-column sample vectors come straight out of the typed buffers via
/// [`to_f64_samples`] (the one NULL→NaN conversion point) instead of
/// through boxed `Value` cells.
///
/// Semantics (seed derivation, CRN point salting, NULL→NaN samples) are
/// identical to [`simulate_point`] and [`simulate_point_block`] — per
/// world, the produced samples are bit-identical. Also returns the tier's
/// kernel/fallback counters so callers can account for how much of the
/// walk stayed typed.
pub fn simulate_point_columnar(
    select: &SelectInto,
    registry: &VgRegistry,
    seeds: &SeedManager,
    point: &ParamPoint,
    worlds: &[u64],
    common_random_numbers: bool,
) -> SqlResult<(SampleSet, ColumnarStats)> {
    let params = point.to_value_map();
    let point_salt = if common_random_numbers {
        0
    } else {
        point.stable_hash()
    };
    let salted: Vec<u64> = worlds.iter().map(|&w| w ^ point_salt).collect();
    let (columns_out, stats) = evaluate_select_columns(select, registry, &params, *seeds, &salted)?;
    let columns: Vec<String> = columns_out.iter().map(|(name, _)| name.clone()).collect();
    let mut samples: HashMap<String, Vec<f64>> = HashMap::with_capacity(columns.len());
    for (name, column) in columns_out {
        samples.insert(name, to_f64_samples(&column)?);
    }
    Ok((
        SampleSet {
            point: point.clone(),
            columns,
            samples,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_data::{DataResult, DataType, Schema, Table, TableBuilder};
    use prophet_sql::parser::parse_script;
    use prophet_vg::rng::Rng64;
    use prophet_vg::VgFunction;
    use std::sync::Arc;

    /// `Noise(center)` = center + U[0,1).
    #[derive(Debug)]
    struct Noise;

    impl VgFunction for Noise {
        fn name(&self) -> &str {
            "Noise"
        }
        fn arity(&self) -> usize {
            1
        }
        fn output_schema(&self) -> Schema {
            Schema::of(&[("v", DataType::Float)])
        }
        fn invoke(&self, params: &[Value], rng: &mut dyn Rng64) -> DataResult<Table> {
            let c = params[0].as_f64()?;
            let mut b = TableBuilder::with_capacity(self.output_schema(), 1);
            b.push_row(vec![Value::Float(c + rng.next_f64())])?;
            Ok(b.finish())
        }
    }

    fn setup() -> (prophet_sql::ast::Script, VgRegistry, SeedManager) {
        let script = parse_script(
            "DECLARE PARAMETER @c AS RANGE 0 TO 100 STEP BY 1;\n\
             SELECT Noise(@c) AS out, Noise(@c) * 2 AS double INTO r;",
        )
        .unwrap();
        let mut registry = VgRegistry::new();
        registry.register(Arc::new(Noise));
        (script, registry, SeedManager::new(42))
    }

    #[test]
    fn simulate_collects_all_columns_and_worlds() {
        let (script, registry, seeds) = setup();
        let point = ParamPoint::from_pairs([("c", 10i64)]);
        let worlds: Vec<u64> = (0..50).collect();
        let ss = simulate_point(&script.select, &registry, &seeds, &point, &worlds, true).unwrap();
        assert_eq!(ss.columns(), &["out".to_string(), "double".to_string()]);
        assert_eq!(ss.world_count(), 50);
        let stats = ss.stats("out").unwrap();
        assert!((10.0..11.0).contains(&stats.mean), "mean={}", stats.mean);
        assert!(ss.samples("nope").is_none());
        assert_eq!(ss.point(), &point);
    }

    #[test]
    fn crn_makes_worlds_comparable_across_points() {
        let (script, registry, seeds) = setup();
        let worlds: Vec<u64> = (0..20).collect();
        let p10 = ParamPoint::from_pairs([("c", 10i64)]);
        let p20 = ParamPoint::from_pairs([("c", 20i64)]);
        let a = simulate_point(&script.select, &registry, &seeds, &p10, &worlds, true).unwrap();
        let b = simulate_point(&script.select, &registry, &seeds, &p20, &worlds, true).unwrap();
        // Same worlds, same noise: the difference must be exactly 10.
        for (x, y) in a
            .samples("out")
            .unwrap()
            .iter()
            .zip(b.samples("out").unwrap())
        {
            assert!((y - x - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn without_crn_noise_is_independent() {
        let (script, registry, seeds) = setup();
        let worlds: Vec<u64> = (0..20).collect();
        let p10 = ParamPoint::from_pairs([("c", 10i64)]);
        let p20 = ParamPoint::from_pairs([("c", 20i64)]);
        let a = simulate_point(&script.select, &registry, &seeds, &p10, &worlds, false).unwrap();
        let b = simulate_point(&script.select, &registry, &seeds, &p20, &worlds, false).unwrap();
        let exact = a
            .samples("out")
            .unwrap()
            .iter()
            .zip(b.samples("out").unwrap())
            .filter(|(x, y)| (*y - *x - 10.0).abs() < 1e-12)
            .count();
        assert_eq!(exact, 0, "independent draws should not line up exactly");
    }

    #[test]
    fn expectation_and_stddev_shortcuts() {
        let (script, registry, seeds) = setup();
        let point = ParamPoint::from_pairs([("c", 0i64)]);
        let worlds: Vec<u64> = (0..2000).collect();
        let ss = simulate_point(&script.select, &registry, &seeds, &point, &worlds, true).unwrap();
        let e = ss.expect("out").unwrap();
        let sd = ss.expect_std_dev("out").unwrap();
        assert!((e - 0.5).abs() < 0.02, "E[U]≈0.5, got {e}");
        let expected_sd = (1.0f64 / 12.0).sqrt();
        assert!((sd - expected_sd).abs() < 0.02, "sd={sd}");
        // double = 2 * an independent draw, so E[double] ≈ 1.0
        assert!((ss.expect("double").unwrap() - 1.0).abs() < 0.04);
    }

    #[test]
    fn absorb_appends_worlds() {
        let (script, registry, seeds) = setup();
        let point = ParamPoint::from_pairs([("c", 5i64)]);
        let w1: Vec<u64> = (0..10).collect();
        let w2: Vec<u64> = (10..30).collect();
        let mut a = simulate_point(&script.select, &registry, &seeds, &point, &w1, true).unwrap();
        let b = simulate_point(&script.select, &registry, &seeds, &point, &w2, true).unwrap();
        a.absorb(&b);
        assert_eq!(a.world_count(), 30);

        let full: Vec<u64> = (0..30).collect();
        let c = simulate_point(&script.select, &registry, &seeds, &point, &full, true).unwrap();
        assert_eq!(a.samples("out").unwrap(), c.samples("out").unwrap());
    }

    #[test]
    fn block_simulation_is_bit_identical_to_scalar() {
        let (script, registry, seeds) = setup();
        let point = ParamPoint::from_pairs([("c", 10i64)]);
        let worlds: Vec<u64> = (0..50).collect();
        for crn in [true, false] {
            let scalar =
                simulate_point(&script.select, &registry, &seeds, &point, &worlds, crn).unwrap();
            let block =
                simulate_point_block(&script.select, &registry, &seeds, &point, &worlds, crn)
                    .unwrap();
            assert_eq!(scalar, block, "crn={crn}");
        }
    }

    #[test]
    fn columnar_simulation_is_bit_identical_to_scalar() {
        let (script, registry, seeds) = setup();
        let point = ParamPoint::from_pairs([("c", 10i64)]);
        let worlds: Vec<u64> = (0..50).collect();
        for crn in [true, false] {
            let scalar =
                simulate_point(&script.select, &registry, &seeds, &point, &worlds, crn).unwrap();
            let (columnar, stats) =
                simulate_point_columnar(&script.select, &registry, &seeds, &point, &worlds, crn)
                    .unwrap();
            assert_eq!(scalar, columnar, "crn={crn}");
            // `Noise` has no f64 batch lane, so its calls fall back to
            // boxed values — but the arithmetic stays in typed kernels.
            assert!(stats.fallbacks > 0);
            assert!(stats.kernels > 0);
        }
    }

    #[test]
    fn null_outputs_become_nan_samples() {
        let script = parse_script("SELECT 1 / 0 AS bad INTO r;").unwrap();
        let registry = VgRegistry::new();
        let seeds = SeedManager::new(1);
        let ss = simulate_point(
            &script.select,
            &registry,
            &seeds,
            &ParamPoint::new(),
            &[0],
            true,
        )
        .unwrap();
        assert!(ss.samples("bad").unwrap()[0].is_nan());
    }
}
