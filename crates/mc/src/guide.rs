//! The Guide: strategies that produce the sequence of instances to simulate.
//!
//! "The Guide component directs scenario evaluation by producing a sequence
//! of instances, each representing a concrete valuation for each parameter
//! and model variable in the scenario" (§2). Three strategies:
//!
//! * [`GridGuide`] — exhaustive cartesian sweep (offline mode),
//! * [`RandomGuide`] — uniform random exploration (baseline for benches),
//! * [`PriorityGuide`] — priority-queue exploration used by online mode:
//!   user-requested points jump the queue, and the paper's *proactive
//!   exploration* ("which values are proactively being explored anticipating
//!   their future usage", §3.2) enqueues the neighbourhood of recent
//!   requests at lower priority.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use prophet_sql::ast::ParameterDecl;
use prophet_vg::rng::{Rng64, Xoshiro256StarStar};

use crate::instance::ParamPoint;

/// A source of parameter points to evaluate next.
///
/// The trait is object-safe: online sessions hold a `Box<dyn Guide + Send>`
/// so the exploration strategy is pluggable (the
/// `Prophet` builder's `.exploration(…)` hook), not hard-wired to
/// [`PriorityGuide`].
pub trait Guide {
    /// The next point to evaluate, or `None` when the strategy has nothing
    /// pending.
    fn next_point(&mut self) -> Option<ParamPoint>;

    /// Notification that the user explicitly requested `point` by adjusting
    /// the parameter `axis` — the hook anticipatory strategies use to queue
    /// proactive work (paper §3.2). Default: no-op.
    fn observe_adjustment(&mut self, point: &ParamPoint, axis: &str) {
        let _ = (point, axis);
    }

    /// Number of explicitly queued points waiting to be served. Strategies
    /// that *generate* rather than queue (grid, random) report 0.
    fn pending(&self) -> usize {
        0
    }

    /// Notification that `point` was evaluated only partially (a
    /// progressive estimate converged — or its budget ran out — below the
    /// configured world depth): the remaining work is real and should not
    /// be silently discarded. Queueing strategies re-queue the point so
    /// idle time (`prefetch_tick`) can finish it; the default is a no-op.
    fn observe_partial(&mut self, point: &ParamPoint) {
        let _ = point;
    }
}

/// Builds a fresh [`Guide`] for one session over the given parameter
/// declarations. The `Prophet` service holds one factory and invokes it per
/// session, since guides are stateful and session-local.
pub trait GuideFactory: Send + Sync {
    /// Construct a guide for a scenario's parameters.
    fn build(&self, decls: &[ParameterDecl]) -> Box<dyn Guide + Send>;
}

impl<F> GuideFactory for F
where
    F: Fn(&[ParameterDecl]) -> Box<dyn Guide + Send> + Send + Sync,
{
    fn build(&self, decls: &[ParameterDecl]) -> Box<dyn Guide + Send> {
        self(decls)
    }
}

/// Exhaustive row-major sweep over the cartesian product of all declared
/// parameter domains. The first declared parameter varies slowest, so runs
/// are reproducible and cache-friendly for per-prefix reuse.
#[derive(Debug, Clone)]
pub struct GridGuide {
    names: Vec<String>,
    axes: Vec<Vec<i64>>,
    /// Mixed-radix counter over `axes`; `None` once exhausted.
    cursor: Option<Vec<usize>>,
}

impl GridGuide {
    /// Build from parameter declarations.
    pub fn new(decls: &[ParameterDecl]) -> Self {
        let names = decls.iter().map(|d| d.name.clone()).collect();
        let axes: Vec<Vec<i64>> = decls.iter().map(|d| d.domain.values()).collect();
        let cursor = if axes.iter().any(Vec::is_empty) {
            None
        } else {
            Some(vec![0; axes.len()])
        };
        GridGuide {
            names,
            axes,
            cursor,
        }
    }

    /// Total number of points in the sweep.
    pub fn total(&self) -> usize {
        self.axes.iter().map(Vec::len).product()
    }
}

impl Guide for GridGuide {
    fn next_point(&mut self) -> Option<ParamPoint> {
        let cursor = self.cursor.as_mut()?;
        let point = ParamPoint::from_pairs(
            self.names
                .iter()
                .zip(self.axes.iter().zip(cursor.iter()))
                .map(|(n, (axis, &i))| (n.clone(), axis[i])),
        );
        // Mixed-radix increment; last axis spins fastest.
        let mut done = true;
        for i in (0..cursor.len()).rev() {
            cursor[i] += 1;
            if cursor[i] < self.axes[i].len() {
                done = false;
                break;
            }
            cursor[i] = 0;
        }
        if done {
            self.cursor = None;
        }
        Some(point)
    }
}

/// Uniform random sampling of the parameter space (with replacement).
/// Baseline strategy for the guide-comparison benches.
#[derive(Debug, Clone)]
pub struct RandomGuide {
    names: Vec<String>,
    axes: Vec<Vec<i64>>,
    rng: Xoshiro256StarStar,
}

impl RandomGuide {
    /// Build from declarations and a seed.
    pub fn new(decls: &[ParameterDecl], seed: u64) -> Self {
        RandomGuide {
            names: decls.iter().map(|d| d.name.clone()).collect(),
            axes: decls.iter().map(|d| d.domain.values()).collect(),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }
}

impl Guide for RandomGuide {
    fn next_point(&mut self) -> Option<ParamPoint> {
        if self.axes.iter().any(Vec::is_empty) {
            return None;
        }
        Some(ParamPoint::from_pairs(
            self.names.iter().zip(&self.axes).map(|(n, axis)| {
                let i = self.rng.gen_range_i64(0, axis.len() as i64 - 1) as usize;
                (n.clone(), axis[i])
            }),
        ))
    }
}

/// Priority level of a queued point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Priority {
    /// Speculative neighbourhood prefetch.
    Prefetch = 0,
    /// Directly requested by the user (slider adjustment).
    User = 1,
}

/// Priority-driven exploration for online mode.
///
/// User requests are served strictly before anticipatory prefetches; within
/// a priority class, FIFO order (stable sequence numbers) keeps the schedule
/// deterministic. Points are deduplicated: enqueueing a point twice, or
/// prefetching one already queued as a user request, is a no-op.
#[derive(Debug)]
pub struct PriorityGuide {
    decls: Vec<ParameterDecl>,
    heap: BinaryHeap<(Priority, Reverse<u64>, ParamPoint)>,
    queued: HashSet<ParamPoint>,
    sequence: u64,
}

impl PriorityGuide {
    /// Build from declarations.
    pub fn new(decls: &[ParameterDecl]) -> Self {
        PriorityGuide {
            decls: decls.to_vec(),
            heap: BinaryHeap::new(),
            queued: HashSet::new(),
            sequence: 0,
        }
    }

    fn enqueue(&mut self, point: ParamPoint, priority: Priority) {
        if self.queued.insert(point.clone()) {
            self.sequence += 1;
            self.heap.push((priority, Reverse(self.sequence), point));
        }
    }

    /// Queue a user-requested point (highest priority).
    pub fn enqueue_user(&mut self, point: ParamPoint) {
        self.enqueue(point, Priority::User);
    }

    /// Queue a speculative point (lowest priority).
    pub fn enqueue_prefetch(&mut self, point: ParamPoint) {
        self.enqueue(point, Priority::Prefetch);
    }

    /// Anticipatory exploration: queue the domain neighbours of `point`
    /// along parameter `axis` (the slider the user last touched — the most
    /// likely next adjustments).
    pub fn prefetch_neighbours(&mut self, point: &ParamPoint, axis: &str) {
        let Some(current) = point.get(axis) else {
            return;
        };
        let Some(decl) = self.decls.iter().find(|d| d.name == axis) else {
            return;
        };
        let values = decl.domain.values();
        let Some(idx) = values.iter().position(|&v| v == current) else {
            return;
        };
        let mut neighbours = Vec::with_capacity(2);
        if idx > 0 {
            neighbours.push(values[idx - 1]);
        }
        if idx + 1 < values.len() {
            neighbours.push(values[idx + 1]);
        }
        for v in neighbours {
            self.enqueue_prefetch(point.with(axis, v));
        }
    }

    /// Number of points currently queued.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }
}

impl Guide for PriorityGuide {
    fn next_point(&mut self) -> Option<ParamPoint> {
        let (_, _, point) = self.heap.pop()?;
        self.queued.remove(&point);
        Some(point)
    }

    /// Anticipate the user's next move: queue the touched slider's domain
    /// neighbours for idle-time prefetching (paper §3.2).
    fn observe_adjustment(&mut self, point: &ParamPoint, axis: &str) {
        self.prefetch_neighbours(point, axis);
    }

    fn pending(&self) -> usize {
        PriorityGuide::pending(self)
    }

    /// A partially evaluated point is pending work: queue it at prefetch
    /// priority so idle time deepens it to full world depth.
    fn observe_partial(&mut self, point: &ParamPoint) {
        self.enqueue_prefetch(point.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_sql::ast::ParameterDomain;

    fn decls() -> Vec<ParameterDecl> {
        vec![
            ParameterDecl {
                name: "a".into(),
                domain: ParameterDomain::Range {
                    lo: 0,
                    hi: 2,
                    step: 1,
                },
            },
            ParameterDecl {
                name: "b".into(),
                domain: ParameterDomain::Set(vec![10, 20]),
            },
        ]
    }

    #[test]
    fn grid_enumerates_full_product_once() {
        let mut g = GridGuide::new(&decls());
        let mut seen = HashSet::new();
        while let Some(p) = g.next_point() {
            assert!(seen.insert(p.clone()), "duplicate point {p}");
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(g.total(), 6);
        for a in 0..=2i64 {
            for b in [10i64, 20] {
                assert!(seen.contains(&ParamPoint::from_pairs([("a", a), ("b", b)])));
            }
        }
    }

    #[test]
    fn grid_order_is_row_major_and_deterministic() {
        let mut g1 = GridGuide::new(&decls());
        let mut g2 = GridGuide::new(&decls());
        let s1: Vec<ParamPoint> = std::iter::from_fn(|| g1.next_point()).collect();
        let s2: Vec<ParamPoint> = std::iter::from_fn(|| g2.next_point()).collect();
        assert_eq!(s1, s2);
        // First parameter declared varies slowest.
        assert_eq!(s1[0], ParamPoint::from_pairs([("a", 0i64), ("b", 10)]));
        assert_eq!(s1[1], ParamPoint::from_pairs([("a", 0i64), ("b", 20)]));
        assert_eq!(s1[2], ParamPoint::from_pairs([("a", 1i64), ("b", 10)]));
    }

    #[test]
    fn grid_with_no_parameters_yields_one_empty_point() {
        let mut g = GridGuide::new(&[]);
        assert_eq!(g.next_point(), Some(ParamPoint::new()));
        assert_eq!(g.next_point(), None);
    }

    #[test]
    fn random_guide_stays_in_domain_and_is_seeded() {
        let ds = decls();
        let mut g1 = RandomGuide::new(&ds, 99);
        let mut g2 = RandomGuide::new(&ds, 99);
        for _ in 0..100 {
            let p1 = g1.next_point().unwrap();
            let p2 = g2.next_point().unwrap();
            assert_eq!(p1, p2, "same seed, same sequence");
            assert!(ds[0].domain.contains(p1.get("a").unwrap()));
            assert!(ds[1].domain.contains(p1.get("b").unwrap()));
        }
    }

    #[test]
    fn priority_guide_user_requests_preempt_prefetch() {
        let ds = decls();
        let mut g = PriorityGuide::new(&ds);
        let p_user = ParamPoint::from_pairs([("a", 1i64), ("b", 10)]);
        let p_other = ParamPoint::from_pairs([("a", 2i64), ("b", 20)]);
        g.enqueue_prefetch(p_other.clone());
        g.enqueue_user(p_user.clone());
        assert_eq!(g.pending(), 2);
        assert_eq!(g.next_point(), Some(p_user));
        assert_eq!(g.next_point(), Some(p_other));
        assert_eq!(g.next_point(), None);
    }

    #[test]
    fn priority_guide_fifo_within_class() {
        let ds = decls();
        let mut g = PriorityGuide::new(&ds);
        let p1 = ParamPoint::from_pairs([("a", 0i64), ("b", 10)]);
        let p2 = ParamPoint::from_pairs([("a", 1i64), ("b", 10)]);
        let p3 = ParamPoint::from_pairs([("a", 2i64), ("b", 10)]);
        g.enqueue_user(p1.clone());
        g.enqueue_user(p2.clone());
        g.enqueue_user(p3.clone());
        assert_eq!(g.next_point(), Some(p1));
        assert_eq!(g.next_point(), Some(p2));
        assert_eq!(g.next_point(), Some(p3));
    }

    #[test]
    fn priority_guide_deduplicates() {
        let ds = decls();
        let mut g = PriorityGuide::new(&ds);
        let p = ParamPoint::from_pairs([("a", 0i64), ("b", 10)]);
        g.enqueue_user(p.clone());
        g.enqueue_user(p.clone());
        g.enqueue_prefetch(p.clone());
        assert_eq!(g.pending(), 1);
        assert_eq!(g.next_point(), Some(p.clone()));
        assert_eq!(g.next_point(), None);
        // after being served, the point may be queued again
        g.enqueue_user(p.clone());
        assert_eq!(g.next_point(), Some(p));
    }

    #[test]
    fn priority_guide_anticipates_neighbours() {
        let ds = vec![ParameterDecl {
            name: "a".into(),
            domain: ParameterDomain::Range {
                lo: 0,
                hi: 8,
                step: 2,
            },
        }];
        let mut g = PriorityGuide::new(&ds);
        let p = ParamPoint::from_pairs([("a", 4i64)]);
        g.enqueue_user(p.clone());
        g.prefetch_neighbours(&p, "a");
        // user point first, then the two domain neighbours 2 and 6
        assert_eq!(g.next_point(), Some(p));
        let n1 = g.next_point().unwrap();
        let n2 = g.next_point().unwrap();
        let mut got = vec![n1.get("a").unwrap(), n2.get("a").unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![2, 6]);
        assert_eq!(g.next_point(), None);
    }

    #[test]
    fn prefetch_neighbours_respects_domain_edges() {
        let ds = vec![ParameterDecl {
            name: "a".into(),
            domain: ParameterDomain::Range {
                lo: 0,
                hi: 8,
                step: 2,
            },
        }];
        let mut g = PriorityGuide::new(&ds);
        let p = ParamPoint::from_pairs([("a", 0i64)]);
        g.prefetch_neighbours(&p, "a");
        // only one neighbour exists (2)
        assert_eq!(g.next_point(), Some(ParamPoint::from_pairs([("a", 2i64)])));
        assert_eq!(g.next_point(), None);
    }

    #[test]
    fn observe_partial_requeues_at_prefetch_priority() {
        let ds = decls();
        let mut g = PriorityGuide::new(&ds);
        let partial = ParamPoint::from_pairs([("a", 1i64), ("b", 10)]);
        let user = ParamPoint::from_pairs([("a", 2i64), ("b", 20)]);
        Guide::observe_partial(&mut g, &partial);
        assert_eq!(g.pending(), 1, "partial point queued as pending work");
        g.enqueue_user(user.clone());
        assert_eq!(g.next_point(), Some(user), "user work still preempts");
        assert_eq!(g.next_point(), Some(partial));
        // The default implementation is a no-op.
        let mut grid = GridGuide::new(&ds);
        Guide::observe_partial(&mut grid, &ParamPoint::new());
        assert_eq!(grid.pending(), 0);
    }

    #[test]
    fn prefetch_neighbours_handles_unknown_axis_and_off_grid_values() {
        let ds = decls();
        let mut g = PriorityGuide::new(&ds);
        let p = ParamPoint::from_pairs([("a", 1i64), ("b", 10)]);
        g.prefetch_neighbours(&p, "zz"); // unknown axis: no-op
        g.prefetch_neighbours(&ParamPoint::from_pairs([("a", 7i64)]), "a"); // off-grid: no-op
        assert_eq!(g.next_point(), None);
    }
}
