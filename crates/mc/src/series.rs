//! Per-X-axis series for the `GRAPH OVER` directive.
//!
//! Online mode plots, per value of the swept parameter (per week in the
//! demo), the Monte Carlo expectation or standard deviation of one result
//! column. A [`Series`] is that list of points plus enough metadata to
//! render Figure 3.

use prophet_sql::ast::{AggMetric, SeriesSpec};

use crate::batch::SampleSet;

/// One plotted point: x (parameter value) → y (aggregate) with its sample
/// size, so renderers can flag low-confidence points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Swept parameter value (e.g. week).
    pub x: i64,
    /// Aggregate value (expectation or std-dev).
    pub y: f64,
    /// Worlds that contributed.
    pub worlds: u64,
}

/// A named series of aggregate values along the swept axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Result column being aggregated.
    pub column: String,
    /// Which aggregate.
    pub metric: AggMetric,
    /// Style words from the scenario script (renderer hints).
    pub style: Vec<String>,
    /// The points, sorted by `x`.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Empty series for a spec.
    pub fn new(spec: &SeriesSpec) -> Self {
        Series {
            column: spec.column.clone(),
            metric: spec.metric,
            style: spec.style.clone(),
            points: Vec::new(),
        }
    }

    /// Insert or replace the point at `x` using the aggregate drawn from a
    /// sample set. Returns the new y value, or `None` if the sample set
    /// lacks the column.
    pub fn update_from(&mut self, x: i64, samples: &SampleSet) -> Option<f64> {
        let y = match self.metric {
            AggMetric::Expect => samples.expect(&self.column)?,
            AggMetric::ExpectStdDev => samples.expect_std_dev(&self.column)?,
        };
        let point = SeriesPoint {
            x,
            y,
            worlds: samples.world_count() as u64,
        };
        match self.points.binary_search_by_key(&x, |p| p.x) {
            Ok(i) => self.points[i] = point,
            Err(i) => self.points.insert(i, point),
        }
        Some(y)
    }

    /// The point at `x`, if computed.
    pub fn at(&self, x: i64) -> Option<&SeriesPoint> {
        self.points
            .binary_search_by_key(&x, |p| p.x)
            .ok()
            .map(|i| &self.points[i])
    }

    /// `(x, y)` pairs for CSV/plotting.
    pub fn xy(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.x as f64, p.y)).collect()
    }

    /// Y-range over the computed points (`None` if empty).
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut it = self.points.iter().map(|p| p.y).filter(|y| y.is_finite());
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for y in it {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ParamPoint;
    use std::collections::HashMap;

    fn sample_set(values: &[f64]) -> SampleSet {
        let mut samples = HashMap::new();
        samples.insert("overload".to_string(), values.to_vec());
        SampleSet::from_samples(ParamPoint::new(), vec!["overload".into()], samples)
    }

    fn spec(metric: AggMetric) -> SeriesSpec {
        SeriesSpec {
            metric,
            column: "overload".into(),
            style: vec!["bold".into(), "red".into()],
        }
    }

    #[test]
    fn update_inserts_sorted_and_replaces() {
        let mut s = Series::new(&spec(AggMetric::Expect));
        s.update_from(5, &sample_set(&[1.0, 0.0])).unwrap();
        s.update_from(1, &sample_set(&[0.0, 0.0])).unwrap();
        s.update_from(3, &sample_set(&[1.0, 1.0])).unwrap();
        let xs: Vec<i64> = s.points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![1, 3, 5]);
        assert_eq!(s.at(3).unwrap().y, 1.0);

        // replacement keeps one point per x
        s.update_from(3, &sample_set(&[0.0, 0.0])).unwrap();
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.at(3).unwrap().y, 0.0);
    }

    #[test]
    fn expectation_vs_stddev_metric() {
        let values = [0.0, 1.0, 0.0, 1.0];
        let mut e = Series::new(&spec(AggMetric::Expect));
        e.update_from(0, &sample_set(&values)).unwrap();
        assert!((e.at(0).unwrap().y - 0.5).abs() < 1e-12);

        let mut sd = Series::new(&spec(AggMetric::ExpectStdDev));
        sd.update_from(0, &sample_set(&values)).unwrap();
        // sample std-dev of {0,1,0,1} with n-1 normalization
        let expected = (1.0f64 / 3.0).sqrt();
        assert!((sd.at(0).unwrap().y - expected).abs() < 1e-12);
    }

    #[test]
    fn missing_column_returns_none() {
        let mut s = Series::new(&SeriesSpec {
            metric: AggMetric::Expect,
            column: "nope".into(),
            style: vec![],
        });
        assert_eq!(s.update_from(0, &sample_set(&[1.0])), None);
        assert!(s.points.is_empty());
    }

    #[test]
    fn xy_and_range() {
        let mut s = Series::new(&spec(AggMetric::Expect));
        s.update_from(0, &sample_set(&[0.0])).unwrap();
        s.update_from(1, &sample_set(&[1.0])).unwrap();
        assert_eq!(s.xy(), vec![(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(s.y_range(), Some((0.0, 1.0)));
        assert_eq!(Series::new(&spec(AggMetric::Expect)).y_range(), None);
    }

    #[test]
    fn worlds_count_is_recorded() {
        let mut s = Series::new(&spec(AggMetric::Expect));
        s.update_from(0, &sample_set(&[0.0, 1.0, 0.5])).unwrap();
        assert_eq!(s.at(0).unwrap().worlds, 3);
    }
}
