//! Materializing the `results` relation.
//!
//! The paper's scenario SELECT writes `INTO results`, a relation that the
//! OPTIMIZE query later reads with SQL aggregation. The engine streams
//! sample sets instead of materializing by default (the whole point of
//! fingerprint reuse is *not* computing most of the relation) — but users
//! export results for external tools, and tests want to inspect the
//! relation the paper describes. This module builds real
//! [`Table`]s from sample sets:
//!
//! * [`worlds_table`] — one row per *(parameter point, world)*: the
//!   instance-level relation (`possible worlds` made tangible),
//! * [`summary_table`] — one row per parameter point with
//!   `expect_*`/`stddev_*` columns: what the Result Aggregator reports.

use prophet_data::{DataError, DataResult, DataType, Field, Schema, Table, TableBuilder, Value};

use crate::batch::SampleSet;

/// Build the instance-level relation: parameters, world id, then one column
/// per scenario output. All sample sets must share the same parameter names
/// and output columns (they come from one scenario).
pub fn worlds_table(sample_sets: &[SampleSet]) -> DataResult<Table> {
    let Some(first) = sample_sets.first() else {
        return Ok(Table::empty(Schema::empty()));
    };
    let param_names: Vec<String> = first.point().iter().map(|(n, _)| n.to_owned()).collect();
    let columns = first.columns().to_vec();

    let mut fields = Vec::with_capacity(param_names.len() + 1 + columns.len());
    for p in &param_names {
        fields.push(Field::new(p.clone(), DataType::Int));
    }
    fields.push(Field::new("world", DataType::Int));
    for c in &columns {
        fields.push(Field::new(c.clone(), DataType::Float));
    }
    let schema = Schema::new(fields)?;

    let total_rows: usize = sample_sets.iter().map(SampleSet::world_count).sum();
    let mut builder = TableBuilder::with_capacity(schema, total_rows);
    for ss in sample_sets {
        validate_same_shape(first, ss)?;
        for world in 0..ss.world_count() {
            let mut row = Vec::with_capacity(param_names.len() + 1 + columns.len());
            for p in &param_names {
                let v = ss.point().get(p).ok_or_else(|| {
                    DataError::SchemaMismatch(format!("sample set missing parameter `{p}`"))
                })?;
                row.push(Value::Int(v));
            }
            row.push(Value::Int(world as i64));
            for c in &columns {
                let xs = ss
                    .samples(c)
                    .ok_or_else(|| DataError::UnknownColumn(c.clone()))?;
                row.push(Value::Float(xs[world]));
            }
            builder.push_row(row)?;
        }
    }
    Ok(builder.finish())
}

/// Build the aggregated relation: one row per parameter point with
/// `expect_<col>` and `stddev_<col>` columns.
pub fn summary_table(sample_sets: &[SampleSet]) -> DataResult<Table> {
    let Some(first) = sample_sets.first() else {
        return Ok(Table::empty(Schema::empty()));
    };
    let param_names: Vec<String> = first.point().iter().map(|(n, _)| n.to_owned()).collect();
    let columns = first.columns().to_vec();

    let mut fields = Vec::with_capacity(param_names.len() + 1 + 2 * columns.len());
    for p in &param_names {
        fields.push(Field::new(p.clone(), DataType::Int));
    }
    fields.push(Field::new("worlds", DataType::Int));
    for c in &columns {
        fields.push(Field::new(format!("expect_{c}"), DataType::Float));
        fields.push(Field::new(format!("stddev_{c}"), DataType::Float));
    }
    let schema = Schema::new(fields)?;

    let mut builder = TableBuilder::with_capacity(schema, sample_sets.len());
    for ss in sample_sets {
        validate_same_shape(first, ss)?;
        let mut row = Vec::with_capacity(param_names.len() + 1 + 2 * columns.len());
        for p in &param_names {
            let v = ss.point().get(p).ok_or_else(|| {
                DataError::SchemaMismatch(format!("sample set missing parameter `{p}`"))
            })?;
            row.push(Value::Int(v));
        }
        row.push(Value::Int(ss.world_count() as i64));
        for c in &columns {
            let stats = ss
                .stats(c)
                .ok_or_else(|| DataError::UnknownColumn(c.clone()))?;
            row.push(Value::Float(stats.mean));
            row.push(Value::Float(stats.std_dev));
        }
        builder.push_row(row)?;
    }
    Ok(builder.finish())
}

fn validate_same_shape(reference: &SampleSet, candidate: &SampleSet) -> DataResult<()> {
    if reference.columns() != candidate.columns() {
        return Err(DataError::SchemaMismatch(format!(
            "sample sets disagree on output columns: {:?} vs {:?}",
            reference.columns(),
            candidate.columns()
        )));
    }
    let ref_params: Vec<&str> = reference.point().iter().map(|(n, _)| n).collect();
    let cand_params: Vec<&str> = candidate.point().iter().map(|(n, _)| n).collect();
    if ref_params != cand_params {
        return Err(DataError::SchemaMismatch(format!(
            "sample sets disagree on parameters: {ref_params:?} vs {cand_params:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::ParamPoint;
    use std::collections::HashMap;

    fn sample_set(week: i64, values: &[f64]) -> SampleSet {
        let mut samples = HashMap::new();
        samples.insert("overload".to_string(), values.to_vec());
        SampleSet::from_samples(
            ParamPoint::from_pairs([("current", week)]),
            vec!["overload".into()],
            samples,
        )
    }

    #[test]
    fn worlds_table_has_one_row_per_instance() {
        let sets = vec![sample_set(0, &[0.0, 1.0]), sample_set(1, &[1.0, 1.0, 0.0])];
        let t = worlds_table(&sets).unwrap();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(
            t.schema().to_string(),
            "(current INT, world INT, overload FLOAT)"
        );
        assert_eq!(t.cell(0, "current").unwrap(), Value::Int(0));
        assert_eq!(t.cell(0, "world").unwrap(), Value::Int(0));
        assert_eq!(t.cell(1, "overload").unwrap(), Value::Float(1.0));
        assert_eq!(t.cell(4, "current").unwrap(), Value::Int(1));
        assert_eq!(t.cell(4, "world").unwrap(), Value::Int(2));
    }

    #[test]
    fn summary_table_aggregates_per_point() {
        let sets = vec![
            sample_set(0, &[0.0, 1.0, 1.0, 0.0]),
            sample_set(1, &[1.0, 1.0]),
        ];
        let t = summary_table(&sets).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(0, "worlds").unwrap(), Value::Int(4));
        assert_eq!(t.cell(0, "expect_overload").unwrap(), Value::Float(0.5));
        assert_eq!(t.cell(1, "expect_overload").unwrap(), Value::Float(1.0));
        assert_eq!(t.cell(1, "stddev_overload").unwrap(), Value::Float(0.0));
    }

    #[test]
    fn empty_input_yields_empty_tables() {
        assert!(worlds_table(&[]).unwrap().is_empty());
        assert!(summary_table(&[]).unwrap().is_empty());
    }

    #[test]
    fn mismatched_shapes_are_rejected() {
        let a = sample_set(0, &[0.0]);
        let mut samples = HashMap::new();
        samples.insert("other".to_string(), vec![1.0]);
        let b = SampleSet::from_samples(
            ParamPoint::from_pairs([("current", 1i64)]),
            vec!["other".into()],
            samples,
        );
        assert!(worlds_table(&[a.clone(), b.clone()]).is_err());
        assert!(summary_table(&[a, b]).is_err());
    }

    #[test]
    fn csv_round_trip_shape() {
        let sets = vec![sample_set(0, &[0.25, 0.75])];
        let t = summary_table(&sets).unwrap();
        let csv = prophet_data::csv::to_csv(&t).unwrap();
        assert!(csv.starts_with("current,worlds,expect_overload,stddev_overload\n"));
        assert!(csv.contains("0,2,0.5,"));
    }
}
