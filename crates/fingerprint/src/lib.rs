//! # prophet-fingerprint
//!
//! The paper's primary contribution: **fingerprints** that identify
//! correlations between executions of a VG-Function under different
//! parameter values, plus the machinery that exploits them.
//!
//! > "The fingerprint of a VG-Function is a concise and easily-computable
//! > data structure that summarizes its output distribution. Thus, a
//! > fingerprint can be used to efficiently determine a function's
//! > correlation with another function, or its own instantiations under
//! > different parameter values." — §2
//!
//! The concrete technique (borrowed from random testing, per the paper): a
//! fingerprint is the vector of a stochastic function's outputs under a
//! *fixed* sequence of PRNG seeds. Because the randomness is pinned, two
//! parameterizations whose outputs are deterministically related produce
//! fingerprints with a detectable functional relationship — and that same
//! relationship can then re-map full Monte Carlo sample sets computed for
//! one parameterization into estimates for the other, skipping the VG
//! invocations entirely.
//!
//! * [`fingerprint`] — computing fingerprints under the canonical seed
//!   sequence,
//! * [`correlate`] — Pearson correlation, least-squares affine fits, lag
//!   (time-shift) detection,
//! * [`mapping`] — the re-mapping transforms and their application to
//!   sample sets and week-series,
//! * [`basis`] — the Storage Manager's basis-distribution store: previously
//!   computed outputs indexed by fingerprint for reuse,
//! * [`index`] — fingerprint summary statistics and the sound match-error
//!   lower bounds a branch-and-bound candidate scan prunes with,
//! * [`markov`] — detection of strongly-correlated successive steps in
//!   Markovian simulations and the region estimators that let the engine
//!   skip chain segments.

pub mod basis;
pub mod correlate;
pub mod fingerprint;
pub mod index;
pub mod mapping;
pub mod markov;

pub use basis::{BasisMatch, BasisStore};
pub use correlate::{fit_affine, pearson, AffineFit, CorrelationDetector};
pub use fingerprint::{Fingerprint, FingerprintConfig};
pub use index::{FingerprintSummary, MatchBound};
pub use mapping::Mapping;
pub use markov::{analyze_chain, ChainRegion, RegionEstimator};
