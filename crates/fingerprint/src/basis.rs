//! The Storage Manager's basis-distribution store.
//!
//! "Fuzzy Prophet maintains a set of basis distributions containing the
//! output of prior scenario evaluation runs. When evaluating the scenario
//! with a new set of parameter values, Fuzzy Prophet first attempts to
//! correlate the scenario's output distribution for one set of parameters
//! to one or more basis distributions by matching their fingerprints,
//! resulting in a lower time to first-accurate-guess." — §1
//!
//! The store is generic over its key (`prophet-fingerprint` sits below the
//! engine layer that knows about parameter points) and its payload (full
//! sample sets, series, whatever the engine caches).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::correlate::CorrelationDetector;
use crate::fingerprint::Fingerprint;
use crate::mapping::Mapping;

/// A successful basis lookup: which stored entry matched and how to map its
/// payload onto the queried fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisMatch<K> {
    /// Key of the matching basis entry.
    pub key: K,
    /// Transform from the stored outputs to the queried parameterization.
    pub mapping: Mapping,
}

struct Entry<P> {
    fingerprint: Fingerprint,
    payload: P,
    /// Monotone insertion stamp; evictions drop the oldest entry.
    stamp: u64,
}

/// Thread-safe basis-distribution store with fingerprint matching.
///
/// Capacity is bounded: the paper's Storage Manager holds "the set of basis
/// distributions", which in a long online session must not grow without
/// bound. Eviction is FIFO (oldest entry first) — simple, deterministic,
/// and adequate because fresh basis entries dominate reuse in practice.
pub struct BasisStore<K, P> {
    inner: RwLock<StoreInner<K, P>>,
    detector: CorrelationDetector,
    capacity: usize,
}

struct StoreInner<K, P> {
    entries: HashMap<K, Entry<P>>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
}

/// A thread panicked while holding the store lock. Named like the
/// rank-table locks in `prophet_mc::sync` so a poison panic always says
/// *which* lock died; this crate sits below the instrumented primitives
/// in the dependency graph, so it reports the same way by hand.
#[cold]
fn poisoned() -> ! {
    panic!("lock `basis entries` (rank 50) poisoned: a thread panicked while holding it")
}

impl<K, P> BasisStore<K, P>
where
    K: Eq + Hash + Clone,
    P: Clone,
{
    /// Create with a detector and a maximum entry count.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a store that cannot hold anything is a
    /// configuration bug).
    pub fn new(detector: CorrelationDetector, capacity: usize) -> Self {
        assert!(capacity > 0, "basis store capacity must be positive");
        BasisStore {
            // Raw lock by necessity (see lint-allow.txt): this crate sits
            // below `prophet_mc::sync` in the dependency graph, so the
            // ordered wrapper is out of reach; `read`/`write` below report
            // poisoning the same way the instrumented primitives do.
            inner: RwLock::new(StoreInner {
                entries: HashMap::new(),
                next_stamp: 0,
                hits: 0,
                misses: 0,
            }),
            detector,
            capacity,
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, StoreInner<K, P>> {
        // analysis:allow(lock-order): sanctioned raw leaf lock below the instrumented layer (see lint-allow.txt)
        self.inner.read().unwrap_or_else(|_| poisoned())
    }

    fn write(&self) -> RwLockWriteGuard<'_, StoreInner<K, P>> {
        // analysis:allow(lock-order): sanctioned raw leaf lock below the instrumented layer (see lint-allow.txt)
        self.inner.write().unwrap_or_else(|_| poisoned())
    }

    /// Insert (or replace) a basis distribution.
    pub fn insert(&self, key: K, fingerprint: Fingerprint, payload: P) {
        let mut inner = self.write();
        inner.next_stamp += 1;
        let stamp = inner.next_stamp;
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&key) {
            // FIFO eviction: drop the oldest stamp.
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
            }
        }
        inner.entries.insert(
            key,
            Entry {
                fingerprint,
                payload,
                stamp,
            },
        );
    }

    /// Exact lookup by key.
    pub fn get(&self, key: &K) -> Option<P> {
        self.read().entries.get(key).map(|e| e.payload.clone())
    }

    /// Whether a key is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.read().entries.contains_key(key)
    }

    /// Find the best correlated basis entry for `query`: smallest error bar
    /// first and, on ties (e.g. several exact mappings), the structurally
    /// simplest mapping — identity beats offset beats affine — because
    /// simpler mappings compose more robustly. Updates hit/miss accounting.
    pub fn find_correlated(&self, query: &Fingerprint) -> Option<(BasisMatch<K>, P)> {
        fn complexity(m: &Mapping) -> u8 {
            match m {
                Mapping::Identity => 0,
                Mapping::Offset(_) | Mapping::Shift { .. } => 1,
                Mapping::Affine { .. } => 2,
                Mapping::Compose(..) => 3,
            }
        }
        let mut inner = self.write();
        let mut best: Option<(BasisMatch<K>, P, (f64, u8))> = None;
        for (key, entry) in &inner.entries {
            if let Some(mapping) = self.detector.detect(&entry.fingerprint, query) {
                let rank = (mapping.error_std(), complexity(&mapping));
                let better = match &best {
                    None => true,
                    Some((_, _, best_rank)) => rank < *best_rank,
                };
                if better {
                    best = Some((
                        BasisMatch {
                            key: key.clone(),
                            mapping,
                        },
                        entry.payload.clone(),
                        rank,
                    ));
                }
            }
        }
        match best {
            Some((m, p, _)) => {
                inner.hits += 1;
                Some((m, p))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// `(hits, misses)` of `find_correlated` so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        let inner = self.read();
        (inner.hits, inner.misses)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.read().entries.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (benchmarks reset between configurations).
    pub fn clear(&self) {
        let mut inner = self.write();
        inner.entries.clear();
        inner.hits = 0;
        inner.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BasisStore<&'static str, Vec<f64>> {
        BasisStore::new(CorrelationDetector::default(), 16)
    }

    #[test]
    fn insert_get_contains() {
        let s = store();
        assert!(s.is_empty());
        s.insert(
            "a",
            Fingerprint::from_values(vec![1.0, 2.0, 3.0]),
            vec![0.5],
        );
        assert!(s.contains(&"a"));
        assert_eq!(s.get(&"a"), Some(vec![0.5]));
        assert_eq!(s.get(&"b"), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn correlated_lookup_returns_mapping_and_payload() {
        let s = store();
        let base = Fingerprint::from_values(vec![1.0, 2.0, 3.0, 5.0]);
        s.insert("base", base.clone(), vec![10.0, 20.0]);

        // query = base + 7 → Offset(7)
        let query = Fingerprint::from_values(base.values().iter().map(|v| v + 7.0).collect());
        let (m, payload) = s.find_correlated(&query).unwrap();
        assert_eq!(m.key, "base");
        assert_eq!(m.mapping, Mapping::Offset(7.0));
        assert_eq!(m.mapping.apply_samples(&payload), vec![17.0, 27.0]);
        assert_eq!(s.hit_stats(), (1, 0));
    }

    #[test]
    fn misses_are_counted() {
        let s = store();
        s.insert(
            "a",
            Fingerprint::from_values(vec![1.0, -1.0, 1.0, -1.0]),
            vec![],
        );
        let unrelated = Fingerprint::from_values(vec![0.2, 0.9, 0.4, 0.35]);
        assert!(s.find_correlated(&unrelated).is_none());
        assert_eq!(s.hit_stats(), (0, 1));
    }

    #[test]
    fn exact_match_preferred_over_affine() {
        let s = store();
        let target = Fingerprint::from_values(vec![2.0, 4.0, 6.0, 10.0]);
        // candidate A: affine-related (scale 2)
        s.insert(
            "affine",
            Fingerprint::from_values(vec![1.0, 2.0, 3.0, 5.0]),
            vec![1.0],
        );
        // candidate B: identical
        s.insert("exact", target.clone(), vec![2.0]);
        let (m, _) = s.find_correlated(&target).unwrap();
        assert_eq!(m.key, "exact");
        assert_eq!(m.mapping, Mapping::Identity);
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let s: BasisStore<&str, ()> = BasisStore::new(CorrelationDetector::default(), 2);
        s.insert("one", Fingerprint::from_values(vec![1.0, 2.0]), ());
        s.insert("two", Fingerprint::from_values(vec![2.0, 3.0]), ());
        s.insert("three", Fingerprint::from_values(vec![3.0, 4.0]), ());
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&"one"), "oldest evicted");
        assert!(s.contains(&"two"));
        assert!(s.contains(&"three"));
    }

    #[test]
    fn reinsert_same_key_does_not_evict_others() {
        let s: BasisStore<&str, u32> = BasisStore::new(CorrelationDetector::default(), 2);
        s.insert("one", Fingerprint::from_values(vec![1.0, 2.0]), 1);
        s.insert("two", Fingerprint::from_values(vec![2.0, 3.0]), 2);
        s.insert("one", Fingerprint::from_values(vec![1.0, 2.0]), 99);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&"one"), Some(99));
        assert!(s.contains(&"two"));
    }

    #[test]
    fn clear_resets_everything() {
        let s = store();
        s.insert("a", Fingerprint::from_values(vec![1.0, 2.0]), vec![]);
        let _ = s.find_correlated(&Fingerprint::from_values(vec![9.0, -9.0]));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.hit_stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: BasisStore<&str, ()> = BasisStore::new(CorrelationDetector::default(), 0);
    }
}
