//! Correlation detection between fingerprints.
//!
//! Detecting that two parameterizations are correlated — and *how* — is the
//! step that turns fingerprints into savings: a confident affine fit means
//! every stored Monte Carlo sample for the source point can be re-mapped to
//! the target point without invoking the VG-Function again.

use std::collections::HashMap;

use crate::fingerprint::Fingerprint;
use crate::mapping::Mapping;

/// Pearson correlation coefficient of two equal-length slices.
/// Returns `None` for slices shorter than 2, mismatched lengths, non-finite
/// input, or zero variance on either side.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// A least-squares affine fit `y ≈ scale · x + offset` with diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineFit {
    /// Slope.
    pub scale: f64,
    /// Intercept.
    pub offset: f64,
    /// Coefficient of determination (1 = perfect linear relationship).
    pub r2: f64,
    /// Standard deviation of the fit residuals, in y units. This is the
    /// error bar the engine attaches to mapped estimates.
    pub residual_std: f64,
}

/// Fit `y = scale·x + offset` by ordinary least squares.
/// Returns `None` under the same degeneracies as [`pearson`], except that a
/// zero-variance `y` against a varying `x` is a valid (constant) fit.
pub fn fit_affine(xs: &[f64], ys: &[f64]) -> Option<AffineFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 {
        return None; // constant x cannot predict anything
    }
    let scale = sxy / sxx;
    let offset = my - scale * mx;
    // Residual sum of squares and R².
    let mut rss = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let e = y - (scale * x + offset);
        rss += e * e;
    }
    let r2 = if syy > 0.0 { 1.0 - rss / syy } else { 1.0 };
    let dof = (xs.len() - 2).max(1) as f64;
    Some(AffineFit {
        scale,
        offset,
        r2,
        residual_std: (rss / dof).sqrt(),
    })
}

/// Best time-shift between two series: the lag `k` (|k| ≤ `max_lag`)
/// maximizing the Pearson correlation of `ys[i]` with `xs[i - k]`.
/// Returns `(lag, correlation)` or `None` when no overlap of length ≥ 2
/// yields a defined correlation.
pub fn best_lag(xs: &[f64], ys: &[f64], max_lag: usize) -> Option<(i64, f64)> {
    let mut best: Option<(i64, f64)> = None;
    let max_lag = max_lag as i64;
    for lag in -max_lag..=max_lag {
        // Overlapping windows under this lag.
        let (xs_w, ys_w): (Vec<f64>, Vec<f64>) = xs
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| {
                let j = i as i64 + lag;
                if j >= 0 && (j as usize) < ys.len() {
                    Some((x, ys[j as usize]))
                } else {
                    None
                }
            })
            .unzip();
        if let Some(r) = pearson(&xs_w, &ys_w) {
            let better = match best {
                None => true,
                Some((_, br)) => r.abs() > br.abs() + 1e-12,
            };
            if better {
                best = Some((lag, r));
            }
        }
    }
    best
}

/// Thresholded detector turning fingerprint pairs into [`Mapping`]s.
///
/// The detector prefers the *simplest* adequate mapping: identity before
/// pure shift (offset) before general affine. Simpler mappings compose more
/// robustly and are cheaper to apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationDetector {
    /// Minimum R² for an affine mapping to be accepted.
    pub min_r2: f64,
    /// Absolute tolerance when testing identity / constant-offset
    /// relationships.
    pub tolerance: f64,
}

impl Default for CorrelationDetector {
    fn default() -> Self {
        CorrelationDetector {
            min_r2: 0.98,
            tolerance: 1e-9,
        }
    }
}

impl CorrelationDetector {
    /// Detect a relationship between two *week-indexed series* (x, y),
    /// preferring a pure time-shift over value transforms.
    ///
    /// This is the paper's Markovian-discontinuity case: "processes built
    /// around discontinuities, with discrete events occurring at random
    /// points in time (e.g., the nondeterministic date when new hardware
    /// comes online)" shift a series along the axis rather than rescaling
    /// it. Returns `Shift{lag}` when some lag within `max_lag` aligns the
    /// series almost perfectly, otherwise falls back to the scalar
    /// detection logic on the aligned (lag-0) values.
    pub fn detect_series(
        &self,
        source: &[(i64, f64)],
        target: &[(i64, f64)],
        max_lag: usize,
    ) -> Option<Mapping> {
        if source.len() < 3 || target.len() < 3 {
            return None;
        }
        // Dense y-vectors aligned by position (series are sorted by x).
        let xs: Vec<f64> = source.iter().map(|&(_, y)| y).collect();
        let ys: Vec<f64> = target.iter().map(|&(_, y)| y).collect();
        if let Some((lag, r)) = best_lag(&xs, &ys, max_lag) {
            if lag != 0 && r >= self.min_r2.sqrt() {
                // Verify the shift is value-preserving up to a constant:
                // overlapping samples must differ by the same offset
                // everywhere (a trend component shows up as that constant).
                let scale = xs.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
                let pairs: Vec<(f64, f64)> = xs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &x)| {
                        let j = i as i64 + lag;
                        (j >= 0 && (j as usize) < ys.len()).then(|| (x, ys[j as usize]))
                    })
                    .collect();
                if let Some(&(x0, y0)) = pairs.first() {
                    let offset = y0 - x0;
                    let constant_offset = pairs
                        .iter()
                        .all(|(x, y)| ((y - x) - offset).abs() <= 1e-6 * scale);
                    if constant_offset {
                        let shift = Mapping::Shift { lag };
                        return Some(if offset.abs() <= 1e-6 * scale {
                            shift
                        } else {
                            shift.then(Mapping::Offset(offset))
                        });
                    }
                }
            }
        }
        self.detect(&Fingerprint::from_values(xs), &Fingerprint::from_values(ys))
    }

    /// Batch detection across a whole column set: detect a mapping for
    /// *every* name in `columns` from the `source` fingerprint map onto the
    /// `probe` map. Returns the per-column mappings plus the summed
    /// [`Mapping::error_std`] (the candidate-ranking score a basis store
    /// uses to pick the best source), or `None` as soon as any column lacks
    /// a fingerprint on either side or fails detection.
    ///
    /// This is the unit of work of the batched, source-parallel store probe:
    /// each worker thread scores candidate sources against probe sets with
    /// one `detect_all` call per (candidate, probe) pair.
    pub fn detect_all(
        &self,
        source: &HashMap<String, Fingerprint>,
        probe: &HashMap<String, Fingerprint>,
        columns: &[String],
    ) -> Option<(HashMap<String, Mapping>, f64)> {
        let mut mappings = HashMap::with_capacity(columns.len());
        let mut total_err = 0.0;
        for col in columns {
            let mapping = self.detect(source.get(col)?, probe.get(col)?)?;
            total_err += mapping.error_std();
            mappings.insert(col.clone(), mapping);
        }
        Some((mappings, total_err))
    }

    /// Detect a mapping from `source` to `target` fingerprints, or `None`
    /// if they are not confidently related.
    pub fn detect(&self, source: &Fingerprint, target: &Fingerprint) -> Option<Mapping> {
        let (xs, ys) = source.common_prefix(target);
        if xs.len() < 2 {
            return None;
        }
        if xs.iter().chain(ys).any(|v| !v.is_finite()) {
            return None;
        }
        // Identity?
        if xs
            .iter()
            .zip(ys)
            .all(|(x, y)| (x - y).abs() <= self.tolerance)
        {
            return Some(Mapping::Identity);
        }
        // Constant offset?
        let d0 = ys[0] - xs[0];
        if xs
            .iter()
            .zip(ys)
            .all(|(x, y)| ((y - x) - d0).abs() <= self.tolerance)
        {
            return Some(Mapping::Offset(d0));
        }
        // General affine.
        let fit = fit_affine(xs, ys)?;
        if fit.r2 >= self.min_r2 {
            Some(Mapping::Affine {
                scale: fit.scale,
                offset: fit.offset,
                residual_std: fit.residual_std,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None, "zero variance");
        assert_eq!(pearson(&[1.0, f64::NAN], &[2.0, 3.0]), None);
    }

    #[test]
    fn affine_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let fit = fit_affine(&xs, &ys).unwrap();
        assert!((fit.scale - 3.0).abs() < 1e-12);
        assert!((fit.offset + 7.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!(fit.residual_std < 1e-9);
    }

    #[test]
    fn affine_fit_reports_noise_in_residuals() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // deterministic "noise" via a fixed pattern with zero mean
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = fit_affine(&xs, &ys).unwrap();
        assert!((fit.scale - 2.0).abs() < 1e-3);
        assert!(fit.r2 > 0.999, "strong but not perfect: r2={}", fit.r2);
        assert!(
            (fit.residual_std - 0.5).abs() < 0.01,
            "residual_std={}",
            fit.residual_std
        );
    }

    #[test]
    fn affine_fit_constant_y_is_valid() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = fit_affine(&xs, &ys).unwrap();
        assert_eq!(fit.scale, 0.0);
        assert_eq!(fit.offset, 5.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn affine_fit_constant_x_is_rejected() {
        assert_eq!(fit_affine(&[2.0, 2.0], &[1.0, 5.0]), None);
    }

    #[test]
    fn best_lag_finds_pure_shift() {
        let xs: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.7).sin()).collect();
        // ys is xs delayed by 4: ys[i] = xs[i - 4]
        let ys: Vec<f64> = (0..30)
            .map(|i| if i >= 4 { xs[i - 4] } else { 0.123 * i as f64 })
            .collect();
        let (lag, r) = best_lag(&xs, &ys, 8).unwrap();
        assert_eq!(lag, 4);
        assert!(r > 0.99, "r={r}");
    }

    #[test]
    fn best_lag_zero_for_identical() {
        let xs: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let (lag, r) = best_lag(&xs, &xs, 5).unwrap();
        assert_eq!(lag, 0);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detector_prefers_simplest_mapping() {
        let det = CorrelationDetector::default();
        let base = Fingerprint::from_values(vec![1.0, 2.0, 3.0, 5.0, 8.0]);

        // identity
        let same = base.clone();
        assert_eq!(det.detect(&base, &same), Some(Mapping::Identity));

        // pure offset
        let shifted = Fingerprint::from_values(base.values().iter().map(|v| v + 4.0).collect());
        assert_eq!(det.detect(&base, &shifted), Some(Mapping::Offset(4.0)));

        // affine
        let scaled =
            Fingerprint::from_values(base.values().iter().map(|v| 2.0 * v + 1.0).collect());
        match det.detect(&base, &scaled) {
            Some(Mapping::Affine { scale, offset, .. }) => {
                assert!((scale - 2.0).abs() < 1e-9);
                assert!((offset - 1.0).abs() < 1e-9);
            }
            other => panic!("expected affine, got {other:?}"),
        }
    }

    #[test]
    fn detect_all_requires_every_column_to_match() {
        let det = CorrelationDetector::default();
        let base = vec![1.0, 2.0, 3.0, 5.0, 8.0];
        let shifted: Vec<f64> = base.iter().map(|v| v + 4.0).collect();
        let noise = vec![0.3, 0.1, 0.4, 0.1, 0.5];
        let source = HashMap::from([
            ("a".to_owned(), Fingerprint::from_values(base.clone())),
            ("b".to_owned(), Fingerprint::from_values(base.clone())),
        ]);
        let probe = HashMap::from([
            ("a".to_owned(), Fingerprint::from_values(shifted)),
            ("b".to_owned(), Fingerprint::from_values(base.clone())),
        ]);
        let cols = ["a".to_owned(), "b".to_owned()];
        let (mappings, err) = det.detect_all(&source, &probe, &cols).expect("both map");
        assert_eq!(mappings["a"], Mapping::Offset(4.0));
        assert_eq!(mappings["b"], Mapping::Identity);
        assert_eq!(err, 0.0, "identity/offset mappings are exact");

        // One unrelated column sinks the whole candidate.
        let bad_probe = HashMap::from([
            ("a".to_owned(), Fingerprint::from_values(base.clone())),
            ("b".to_owned(), Fingerprint::from_values(noise)),
        ]);
        assert_eq!(det.detect_all(&source, &bad_probe, &cols), None);
        // A column missing from either side is a miss, not a panic.
        let missing = ["a".to_owned(), "zz".to_owned()];
        assert_eq!(det.detect_all(&source, &probe, &missing), None);
    }

    #[test]
    fn detector_rejects_unrelated_fingerprints() {
        let det = CorrelationDetector::default();
        let a = Fingerprint::from_values(vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0, -8.0]);
        let b = Fingerprint::from_values(vec![0.3, 0.1, 0.4, 0.1, 0.5, 0.9, 0.2, 0.6]);
        assert_eq!(det.detect(&a, &b), None);
    }

    #[test]
    fn detector_rejects_nan_and_short() {
        let det = CorrelationDetector::default();
        let good = Fingerprint::from_values(vec![1.0, 2.0, 3.0]);
        let nan = Fingerprint::from_values(vec![1.0, f64::NAN, 3.0]);
        let short = Fingerprint::from_values(vec![1.0]);
        assert_eq!(det.detect(&good, &nan), None);
        assert_eq!(det.detect(&nan, &good), None);
        assert_eq!(
            det.detect(&good, &short),
            None,
            "common prefix of 1 is too short"
        );
    }

    fn step_series(step_week: i64, len: i64) -> Vec<(i64, f64)> {
        // A capacity-like series: decay plus a +4000 step at `step_week`.
        (0..len)
            .map(|w| {
                let base = 10_000.0 - 57.0 * w as f64;
                let stepped = if w >= step_week { base + 4_000.0 } else { base };
                (w, stepped)
            })
            .collect()
    }

    #[test]
    fn detect_series_finds_deployment_shift() {
        let det = CorrelationDetector::default();
        let a = step_series(18, 53);
        let b = step_series(22, 53); // purchase delayed by 4 weeks
                                     // The series combines a linear decay with the shifted step, so the
                                     // relationship is shift ∘ constant-offset: b[w] = a[w-4] - 4·57.
        let mapping = det
            .detect_series(&a, &b, 8)
            .expect("shift must be detected");
        match &mapping {
            Mapping::Compose(first, second) => {
                assert_eq!(**first, Mapping::Shift { lag: 4 });
                match **second {
                    Mapping::Offset(d) => assert!((d + 4.0 * 57.0).abs() < 1e-6, "offset {d}"),
                    ref other => panic!("expected offset, got {other:?}"),
                }
            }
            other => panic!("expected shift∘offset, got {other:?}"),
        }
        // Applying the mapping to a reproduces b on the overlap.
        let mapped = mapping.apply_series(&a, 0, 52);
        for (x, y) in &mapped {
            let expected = b.iter().find(|(bx, _)| bx == x).unwrap().1;
            assert!((y - expected).abs() < 1e-9, "week {x}: {y} vs {expected}");
        }
    }

    #[test]
    fn detect_series_identity_for_equal_series() {
        let det = CorrelationDetector::default();
        let a = step_series(18, 40);
        assert_eq!(det.detect_series(&a, &a, 8), Some(Mapping::Identity));
    }

    #[test]
    fn detect_series_falls_back_to_offset() {
        let det = CorrelationDetector::default();
        let a = step_series(18, 40);
        let b: Vec<(i64, f64)> = a.iter().map(|&(x, y)| (x, y + 123.0)).collect();
        assert_eq!(det.detect_series(&a, &b, 8), Some(Mapping::Offset(123.0)));
    }

    #[test]
    fn detect_series_rejects_short_or_unrelated() {
        let det = CorrelationDetector::default();
        assert_eq!(det.detect_series(&[(0, 1.0)], &[(0, 1.0)], 4), None);
        let a = step_series(18, 30);
        let noise: Vec<(i64, f64)> = (0..30)
            .map(|w| (w, ((w * 7919 % 97) as f64) * 100.0))
            .collect();
        assert_eq!(det.detect_series(&a, &noise, 8), None);
    }
}
