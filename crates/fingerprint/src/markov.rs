//! Markovian-dependency detection and region estimators.
//!
//! "When a simulation is Markovian (where the simulation consists of a
//! series of steps, each depending on the simulation's output for the prior
//! step), outputs of successive steps often remain strongly correlated. …
//! Fingerprints can identify such Markovian dependencies, enabling
//! automated generation of simple non-Markovian estimators. These
//! estimators, valid for regions of the Markov chain, allow Fuzzy Prophet
//! to skip the corresponding portions of the simulation." — §2
//!
//! Given *step fingerprints* — for each chain step, the vector of that
//! step's output across the fixed fingerprint worlds — [`analyze_chain`]
//! finds maximal regions where each step is an affine function of its
//! predecessor, and produces a [`RegionEstimator`] per region that predicts
//! the region's final step directly from its first, letting the simulator
//! jump over the interior steps.

use crate::correlate::{fit_affine, AffineFit};
use crate::mapping::Mapping;

/// A maximal run of chain steps `[start, end]` (inclusive) where every
/// consecutive pair is confidently affine-related.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRegion {
    /// First step of the region.
    pub start: usize,
    /// Last step of the region (inclusive; `end > start`).
    pub end: usize,
    /// Per-transition fits for steps `start→start+1, …, end-1→end`.
    pub fits: Vec<AffineFit>,
}

impl ChainRegion {
    /// Number of steps the estimator lets the simulator skip (the interior
    /// transitions: simulating `start`, then jumping straight to `end`).
    pub fn steps_skipped(&self) -> usize {
        self.end - self.start - 1
    }

    /// Build the estimator that maps step-`start` output to step-`end`
    /// output by composing the per-transition affine maps.
    pub fn estimator(&self) -> RegionEstimator {
        let mut mapping = Mapping::Identity;
        for fit in &self.fits {
            mapping = mapping.then(Mapping::Affine {
                scale: fit.scale,
                offset: fit.offset,
                residual_std: fit.residual_std,
            });
        }
        RegionEstimator {
            start: self.start,
            end: self.end,
            mapping,
        }
    }
}

/// A non-Markovian estimator for one region: predicts step `end` output
/// directly from step `start` output.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEstimator {
    /// Input step.
    pub start: usize,
    /// Predicted step.
    pub end: usize,
    /// The composed transform.
    pub mapping: Mapping,
}

impl RegionEstimator {
    /// Predict the end-of-region output from the start-of-region output.
    pub fn predict(&self, start_value: f64) -> f64 {
        self.mapping.apply_scalar(start_value)
    }

    /// One-sigma error bar of the prediction.
    pub fn error_std(&self) -> f64 {
        self.mapping.error_std()
    }
}

/// Find all maximal affine-correlated regions in a chain.
///
/// `steps[i]` is step `i`'s output across the fixed fingerprint worlds
/// (all steps must share the same world count). A transition `i → i+1`
/// joins a region when its affine fit has `r² ≥ min_r2`. Regions shorter
/// than two steps (no skippable interior or jump) are discarded.
pub fn analyze_chain(steps: &[Vec<f64>], min_r2: f64) -> Vec<ChainRegion> {
    let mut regions = Vec::new();
    if steps.len() < 2 {
        return regions;
    }
    let mut start = 0usize;
    let mut fits: Vec<AffineFit> = Vec::new();
    for i in 0..steps.len() - 1 {
        let fit = fit_affine(&steps[i], &steps[i + 1]).filter(|f| f.r2 >= min_r2);
        match fit {
            Some(f) => fits.push(f),
            None => {
                if !fits.is_empty() {
                    regions.push(ChainRegion {
                        start,
                        end: i,
                        fits: std::mem::take(&mut fits),
                    });
                }
                start = i + 1;
            }
        }
    }
    if !fits.is_empty() {
        regions.push(ChainRegion {
            start,
            end: steps.len() - 1,
            fits,
        });
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random pattern (no RNG dependency needed).
    fn noise(i: usize, j: usize) -> f64 {
        (((i * 31 + j * 17) % 19) as f64 - 9.0) / 9.0
    }

    /// Chain where each step is 1.02x the previous plus a constant drift —
    /// exactly affine, so the whole chain is one region.
    fn smooth_chain(steps: usize, worlds: usize) -> Vec<Vec<f64>> {
        let mut chain = vec![(0..worlds)
            .map(|w| 100.0 + 5.0 * noise(0, w))
            .collect::<Vec<f64>>()];
        for _ in 1..steps {
            let prev = chain.last().unwrap();
            chain.push(prev.iter().map(|&x| 1.02 * x + 3.0).collect());
        }
        chain
    }

    #[test]
    fn fully_affine_chain_is_one_region() {
        let chain = smooth_chain(10, 24);
        let regions = analyze_chain(&chain, 0.98);
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert_eq!((r.start, r.end), (0, 9));
        assert_eq!(r.fits.len(), 9);
        assert_eq!(r.steps_skipped(), 8);
    }

    #[test]
    fn estimator_predicts_end_from_start() {
        let chain = smooth_chain(6, 24);
        let regions = analyze_chain(&chain, 0.98);
        let est = regions[0].estimator();
        assert_eq!((est.start, est.end), (0, 5));
        // Each world's final value should be predicted near-exactly.
        for (x0, x5) in chain[0].iter().zip(&chain[5]) {
            let pred = est.predict(*x0);
            assert!((pred - x5).abs() < 1e-6, "pred={pred} actual={x5}");
        }
        assert!(est.error_std() < 1e-6);
    }

    #[test]
    fn discontinuity_splits_regions() {
        // Steps 0..=3 smooth, step 4 is pure noise (uncorrelated with 3),
        // steps 4..=7 smooth again.
        let worlds = 32;
        let mut chain = smooth_chain(4, worlds);
        chain.push((0..worlds).map(|w| noise(99, w * 7 + 1) * 50.0).collect());
        for _ in 0..3 {
            let prev = chain.last().unwrap();
            chain.push(prev.iter().map(|&x| 0.9 * x - 1.0).collect());
        }
        let regions = analyze_chain(&chain, 0.98);
        assert_eq!(regions.len(), 2, "regions: {regions:?}");
        assert_eq!((regions[0].start, regions[0].end), (0, 3));
        assert_eq!((regions[1].start, regions[1].end), (4, 7));
    }

    #[test]
    fn noisy_transitions_yield_no_regions() {
        let worlds = 32;
        let chain: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                (0..worlds)
                    .map(|w| noise(i * 13 + 1, w * 3 + i) * 10.0)
                    .collect()
            })
            .collect();
        let regions = analyze_chain(&chain, 0.98);
        assert!(regions.is_empty(), "{regions:?}");
    }

    #[test]
    fn short_chains_are_handled() {
        assert!(analyze_chain(&[], 0.9).is_empty());
        assert!(analyze_chain(&[vec![1.0, 2.0]], 0.9).is_empty());
        // exactly one good transition → region (0,1) with nothing to skip
        let chain = smooth_chain(2, 16);
        let regions = analyze_chain(&chain, 0.98);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].steps_skipped(), 0);
    }

    #[test]
    fn estimator_error_grows_with_noisy_fits() {
        // Transitions with genuine residual noise should produce a nonzero
        // error bar that accumulates across the region.
        let worlds = 64;
        let mut chain = vec![(0..worlds)
            .map(|w| 50.0 + 10.0 * noise(1, w))
            .collect::<Vec<f64>>()];
        for i in 1..5 {
            let prev = chain.last().unwrap();
            chain.push(
                prev.iter()
                    .enumerate()
                    .map(|(w, &x)| 1.01 * x + 2.0 + 0.3 * noise(i * 7 + 2, w))
                    .collect(),
            );
        }
        let regions = analyze_chain(&chain, 0.95);
        assert_eq!(regions.len(), 1);
        let est = regions[0].estimator();
        assert!(est.error_std() > 0.1, "error_std={}", est.error_std());
        assert!(est.error_std() < 5.0, "error_std={}", est.error_std());
    }
}
