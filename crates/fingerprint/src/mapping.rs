//! Output re-mapping transforms.
//!
//! Once a correlation is detected "these correlations allow us to re-map the
//! simulation's output from one parameterization to the other and reduce the
//! work associated with re-evaluating different permutations of the
//! scenario" (§1). A [`Mapping`] is that re-map: a cheap transform applied
//! to stored Monte Carlo samples in place of fresh VG invocations.

use std::fmt;

/// A detected relationship between two parameterizations' outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Mapping {
    /// Outputs are identical: reuse samples as-is.
    Identity,
    /// Outputs differ by a constant: `y = x + offset`.
    Offset(f64),
    /// General affine relationship `y = scale·x + offset`, with the fit's
    /// residual standard deviation as the mapped-estimate error bar.
    Affine {
        /// Slope.
        scale: f64,
        /// Intercept.
        offset: f64,
        /// Residual standard deviation of the fit.
        residual_std: f64,
    },
    /// A time-shift along the series axis (Markovian processes built around
    /// discrete events often shift rather than rescale): series value at
    /// week `w` maps from the source's week `w - lag`.
    Shift {
        /// Lag in axis steps (positive = target lags source).
        lag: i64,
    },
    /// Composition: apply `first`, then `second`. Arises when a point is
    /// reached through a chain of basis entries.
    Compose(Box<Mapping>, Box<Mapping>),
}

impl Mapping {
    /// Apply to a scalar.
    pub fn apply_scalar(&self, x: f64) -> f64 {
        match self {
            Mapping::Identity => x,
            Mapping::Offset(d) => x + d,
            Mapping::Affine { scale, offset, .. } => scale * x + offset,
            // A pure time-shift does not change values, only positions;
            // scalar application is identity.
            Mapping::Shift { .. } => x,
            Mapping::Compose(first, second) => second.apply_scalar(first.apply_scalar(x)),
        }
    }

    /// Apply to a sample vector (Monte Carlo samples of one output column).
    pub fn apply_samples(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply_scalar(x)).collect()
    }

    /// Apply to a week-indexed series: values transform through
    /// [`Mapping::apply_scalar`], and [`Mapping::Shift`] additionally moves
    /// points along the x axis (dropping points shifted off either end —
    /// those weeks genuinely need recomputation).
    pub fn apply_series(&self, series: &[(i64, f64)], x_min: i64, x_max: i64) -> Vec<(i64, f64)> {
        match self {
            Mapping::Shift { lag } => series
                .iter()
                .filter_map(|&(x, y)| {
                    let nx = x + lag;
                    (nx >= x_min && nx <= x_max).then_some((nx, y))
                })
                .collect(),
            Mapping::Compose(first, second) => {
                let mid = first.apply_series(series, x_min, x_max);
                second.apply_series(&mid, x_min, x_max)
            }
            _ => series
                .iter()
                .map(|&(x, y)| (x, self.apply_scalar(y)))
                .collect(),
        }
    }

    /// The error bar (one standard deviation) this mapping adds to mapped
    /// estimates. Identity/Offset/Shift are exact under fixed seeds.
    pub fn error_std(&self) -> f64 {
        match self {
            Mapping::Identity | Mapping::Offset(_) | Mapping::Shift { .. } => 0.0,
            Mapping::Affine { residual_std, .. } => *residual_std,
            Mapping::Compose(first, second) => {
                // Independent error contributions add in quadrature; the
                // second map's scale amplifies the first map's error.
                let amplify = match second.as_ref() {
                    Mapping::Affine { scale, .. } => scale.abs(),
                    _ => 1.0,
                };
                ((first.error_std() * amplify).powi(2) + second.error_std().powi(2)).sqrt()
            }
        }
    }

    /// Whether applying this mapping is exact (no residual error).
    pub fn is_exact(&self) -> bool {
        self.error_std() == 0.0
    }

    /// Compose `self` then `next` (normalizing trivial identities away).
    pub fn then(self, next: Mapping) -> Mapping {
        match (self, next) {
            (Mapping::Identity, m) | (m, Mapping::Identity) => m,
            (a, b) => Mapping::Compose(Box::new(a), Box::new(b)),
        }
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mapping::Identity => write!(f, "identity"),
            Mapping::Offset(d) => write!(
                f,
                "y = x {} {:.4}",
                if *d < 0.0 { "-" } else { "+" },
                d.abs()
            ),
            Mapping::Affine { scale, offset, .. } => write!(f, "y = {scale:.4}·x + {offset:.4}"),
            Mapping::Shift { lag } => write!(f, "shift by {lag}"),
            Mapping::Compose(a, b) => write!(f, "({a}) ∘ ({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_applications() {
        assert_eq!(Mapping::Identity.apply_scalar(3.0), 3.0);
        assert_eq!(Mapping::Offset(2.0).apply_scalar(3.0), 5.0);
        assert_eq!(
            Mapping::Affine {
                scale: 2.0,
                offset: 1.0,
                residual_std: 0.0
            }
            .apply_scalar(3.0),
            7.0
        );
        assert_eq!(Mapping::Shift { lag: 3 }.apply_scalar(3.0), 3.0);
    }

    #[test]
    fn sample_vector_application() {
        let m = Mapping::Offset(-1.0);
        assert_eq!(m.apply_samples(&[1.0, 2.0, 3.0]), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn series_shift_moves_and_clips() {
        let series = vec![(0i64, 10.0), (1, 11.0), (2, 12.0)];
        let m = Mapping::Shift { lag: 2 };
        let out = m.apply_series(&series, 0, 3);
        assert_eq!(out, vec![(2, 10.0), (3, 11.0)]); // (4, 12.0) clipped
        let m = Mapping::Shift { lag: -1 };
        let out = m.apply_series(&series, 0, 3);
        assert_eq!(out, vec![(0, 11.0), (1, 12.0)]); // (-1, 10.0) clipped
    }

    #[test]
    fn series_affine_keeps_positions() {
        let series = vec![(0i64, 1.0), (5, 2.0)];
        let m = Mapping::Affine {
            scale: 10.0,
            offset: 0.5,
            residual_std: 0.0,
        };
        assert_eq!(m.apply_series(&series, 0, 10), vec![(0, 10.5), (5, 20.5)]);
    }

    #[test]
    fn composition_applies_in_order() {
        // (x + 1) then (2x) = 2x + 2
        let m = Mapping::Offset(1.0).then(Mapping::Affine {
            scale: 2.0,
            offset: 0.0,
            residual_std: 0.0,
        });
        assert_eq!(m.apply_scalar(3.0), 8.0);
        // identity normalization
        assert_eq!(
            Mapping::Identity.then(Mapping::Offset(1.0)),
            Mapping::Offset(1.0)
        );
        assert_eq!(
            Mapping::Offset(1.0).then(Mapping::Identity),
            Mapping::Offset(1.0)
        );
    }

    #[test]
    fn composed_shift_and_offset_on_series() {
        let series = vec![(0i64, 1.0), (1, 2.0)];
        let m = Mapping::Shift { lag: 1 }.then(Mapping::Offset(10.0));
        let out = m.apply_series(&series, 0, 5);
        assert_eq!(out, vec![(1, 11.0), (2, 12.0)]);
    }

    #[test]
    fn error_propagation() {
        assert!(Mapping::Identity.is_exact());
        assert!(Mapping::Offset(3.0).is_exact());
        assert!(Mapping::Shift { lag: 1 }.is_exact());
        let a = Mapping::Affine {
            scale: 2.0,
            offset: 0.0,
            residual_std: 0.3,
        };
        assert!(!a.is_exact());
        assert_eq!(a.error_std(), 0.3);
        // compose: second map scale 2 amplifies first's 0.3 to 0.6; second
        // contributes 0.4; total = sqrt(0.36 + 0.16) = sqrt(0.52)
        let b = Mapping::Affine {
            scale: 2.0,
            offset: 0.0,
            residual_std: 0.4,
        };
        let c = Mapping::Compose(Box::new(a), Box::new(b));
        assert!((c.error_std() - 0.52f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Mapping::Identity.to_string(), "identity");
        assert_eq!(Mapping::Offset(-2.0).to_string(), "y = x - 2.0000");
        assert_eq!(Mapping::Shift { lag: 4 }.to_string(), "shift by 4");
    }
}
