//! Fingerprint computation.

use prophet_vg::rng::SeedSequence;

/// Configuration for fingerprint computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintConfig {
    /// Number of fixed seeds (= fingerprint length). Longer fingerprints
    /// discriminate better but cost more probe invocations; experiment E10
    /// sweeps this knob.
    pub length: usize,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        // 32 probes: the E10 ablation shows diminishing returns past this.
        FingerprintConfig { length: 32 }
    }
}

/// A fingerprint: outputs of a stochastic function under the canonical
/// fixed seed sequence.
///
/// Fingerprints of the *same* function under different parameters — or of
/// different functions — are comparable entry-by-entry because entry `i`
/// of every fingerprint was produced with the same seed `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    values: Vec<f64>,
}

impl Fingerprint {
    /// Compute a fingerprint by probing `sample` once per canonical seed.
    ///
    /// `sample` receives the raw seed and must return the function's scalar
    /// output for that seed (for table-valued models, a designated summary
    /// cell — the engine uses the model's primary output column).
    pub fn compute(config: FingerprintConfig, mut sample: impl FnMut(u64) -> f64) -> Self {
        let seeds = SeedSequence::fingerprint_default(config.length);
        Fingerprint {
            values: seeds.seeds().iter().map(|&s| sample(s)).collect(),
        }
    }

    /// Compute under an explicit (non-canonical) sequence. Used by tests
    /// and by the Markov analyzer, which fingerprints *steps* under
    /// chain-specific sequences.
    pub fn compute_with_seeds(seeds: &SeedSequence, mut sample: impl FnMut(u64) -> f64) -> Self {
        Fingerprint {
            values: seeds.seeds().iter().map(|&s| sample(s)).collect(),
        }
    }

    /// Block-probe constructor: `sample` receives the whole canonical seed
    /// block at once and returns one output per seed, in seed order.
    ///
    /// This is the vectorized twin of [`Fingerprint::compute`]: instead of
    /// invoking the stochastic function once per seed, the caller evaluates
    /// all `config.length` probe worlds in a single walk (e.g. through
    /// `prophet-sql`'s block evaluator) and hands back the output column.
    /// The fingerprint is identical to the scalar construction because the
    /// seeds are the same canonical sequence in the same order.
    ///
    /// # Panics
    /// Panics if `sample` returns a column whose length differs from the
    /// seed block — a truncated or padded probe column would silently
    /// misalign every later entry-by-entry comparison.
    pub fn compute_block(
        config: FingerprintConfig,
        sample: impl FnOnce(&[u64]) -> Vec<f64>,
    ) -> Self {
        let seeds = SeedSequence::fingerprint_default(config.length);
        Fingerprint::compute_block_with_seeds(&seeds, sample)
    }

    /// Block-probe constructor under an explicit sequence (see
    /// [`Fingerprint::compute_block`]).
    ///
    /// # Panics
    /// Panics if `sample` returns a column whose length differs from
    /// `seeds.len()`.
    pub fn compute_block_with_seeds(
        seeds: &SeedSequence,
        sample: impl FnOnce(&[u64]) -> Vec<f64>,
    ) -> Self {
        let values = sample(seeds.seeds());
        assert_eq!(
            values.len(),
            seeds.len(),
            "block probe must return one output per seed"
        );
        Fingerprint { values }
    }

    /// Wrap raw values (pre-computed probes).
    pub fn from_values(values: Vec<f64>) -> Self {
        Fingerprint { values }
    }

    /// The probe outputs.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Fingerprint length.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no probes were taken.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Truncate to the common prefix length with `other` (the canonical
    /// sequence has the prefix property, so prefixes remain comparable).
    pub fn common_prefix<'a>(&'a self, other: &'a Fingerprint) -> (&'a [f64], &'a [f64]) {
        let n = self.len().min(other.len());
        (&self.values[..n], &other.values[..n])
    }

    /// Whether all probe outputs are finite (a NaN-producing model cannot
    /// be fingerprint-matched and must fall back to direct simulation).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_vg::rng::{Rng64, Xoshiro256StarStar};

    #[test]
    fn same_function_same_fingerprint() {
        let cfg = FingerprintConfig { length: 16 };
        let f = |seed: u64| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            10.0 + rng.next_f64()
        };
        let a = Fingerprint::compute(cfg, f);
        let b = Fingerprint::compute(cfg, f);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.is_finite());
    }

    #[test]
    fn shifted_parameters_shift_the_fingerprint_exactly() {
        // Under fixed seeds, f(x) = base + noise(seed) obeys
        // fp(base2) - fp(base1) == base2 - base1 entry-wise.
        let cfg = FingerprintConfig { length: 8 };
        let make = |base: f64| {
            Fingerprint::compute(cfg, move |seed| {
                let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
                base + rng.next_f64()
            })
        };
        let a = make(10.0);
        let b = make(25.0);
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((y - x - 15.0).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_property_of_canonical_sequence() {
        let short = Fingerprint::compute(FingerprintConfig { length: 8 }, |s| s as f64);
        let long = Fingerprint::compute(FingerprintConfig { length: 32 }, |s| s as f64);
        let (a, b) = short.common_prefix(&long);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn block_constructor_matches_scalar_constructor() {
        let cfg = FingerprintConfig { length: 16 };
        let f = |seed: u64| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
            10.0 + rng.next_f64()
        };
        let scalar = Fingerprint::compute(cfg, f);
        let block = Fingerprint::compute_block(cfg, |seeds| seeds.iter().map(|&s| f(s)).collect());
        assert_eq!(scalar, block);

        let seq = SeedSequence::from_root(77, 8);
        let a = Fingerprint::compute_with_seeds(&seq, f);
        let b = Fingerprint::compute_block_with_seeds(&seq, |seeds| {
            seeds.iter().map(|&s| f(s)).collect()
        });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one output per seed")]
    fn block_constructor_rejects_misaligned_columns() {
        Fingerprint::compute_block(FingerprintConfig { length: 4 }, |_| vec![1.0, 2.0]);
    }

    #[test]
    fn nan_probes_are_flagged() {
        let fp = Fingerprint::from_values(vec![1.0, f64::NAN]);
        assert!(!fp.is_finite());
        assert!(!fp.is_empty());
    }

    #[test]
    fn empty_fingerprint() {
        let fp = Fingerprint::compute(FingerprintConfig { length: 0 }, |_| unreachable!());
        assert!(fp.is_empty());
        assert!(fp.is_finite(), "vacuously finite");
    }
}
