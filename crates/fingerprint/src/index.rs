//! Fingerprint summary index: cheap, *sound* pre-filters for the
//! correlation match scan.
//!
//! The match scan ([`CorrelationDetector::detect_all`] per candidate
//! source) is the probe phase's remaining O(points × candidates ×
//! fingerprint length) cost once probe evaluation itself is vectorized.
//! Most candidates lose: either no mapping exists at all, or a better
//! (lower-error) source was already found. This module precomputes a
//! [`FingerprintSummary`] per stored column — a handful of moments plus a
//! small bucketed sketch — and derives from two summaries a **lower bound**
//! on the error [`CorrelationDetector::detect`] could possibly report, or a
//! proof that detection must fail outright. A branch-and-bound scan can
//! then skip the entry-by-entry comparison for every candidate whose bound
//! cannot beat the best match found so far.
//!
//! # What is summarized
//!
//! For a fingerprint `x` of length `n`: the length, finiteness, `mean`,
//! `min`, `max`, the centered sum of squares `sxx = Σ(xᵢ−mean)²` (so
//! `‖x−mean‖₂ = √sxx`, the L2 norm of the centered fingerprint), and a
//! *moment-bucketed* sketch of the normalized fingerprint
//! `u = (x−mean)/√sxx`: the index positions `0..n` are split into
//! [`SUMMARY_BUCKETS`] contiguous buckets, and per bucket the zeroth,
//! first and second moments of `u` (count, `Σu`, `Σu²`) are stored.
//!
//! # Soundness argument
//!
//! [`CorrelationDetector::detect`] accepts exactly three mapping shapes,
//! and the bound under-estimates each:
//!
//! * **Identity** (`∀i |xᵢ−yᵢ| ≤ tol`, error 0). Necessary consequences:
//!   `|mean_x−mean_y| ≤ tol`, `|min_x−min_y| ≤ tol`, `|max_x−max_y| ≤ tol`
//!   (the extremum of a pointwise-`tol`-close vector moves by at most
//!   `tol`). If all three hold, the bound is 0 — never an over-estimate.
//!   If any fails, identity is *impossible*.
//! * **Offset** (`∀i |(yᵢ−xᵢ)−d₀| ≤ tol` for some `d₀`, error 0). The mean
//!   difference `d = mean_y−mean_x` satisfies `|d−d₀| ≤ tol`, hence
//!   `|(min_y−min_x)−d| ≤ 2·tol` and likewise for max. If those hold the
//!   bound is 0; if not, offset is impossible.
//! * **Affine** (least-squares fit with `r² ≥ min_r2`, error
//!   `residual_std = √(rss/dof)` where `rss = syy·(1−r²)`). The Pearson
//!   `r` is the inner product `u·v` of the two normalized fingerprints.
//!   Splitting each bucket `b`'s values into its bucket mean `s_b/m_b`
//!   plus a residual `ρ` (which sums to zero within the bucket):
//!
//!   ```text
//!   u·v = Σ_b [ s_b·t_b/m_b  +  ρ_u,b · ρ_v,b ]
//!   |ρ_u,b · ρ_v,b| ≤ ‖ρ_u,b‖·‖ρ_v,b‖   (Cauchy–Schwarz)
//!   ‖ρ_u,b‖² = q_u,b − s_u,b²/m_b        (bucket second moment)
//!   ```
//!
//!   which brackets `r` in an interval; `R = min(1, max(|lo|,|hi|))` is an
//!   upper bound on `|r|`. Then `r² ≤ R²`, so if `R² < min_r2` the affine
//!   fit must be rejected, and otherwise the accepted fit's error is at
//!   least `√(syy·(1−R²)/dof)` — the reported bound.
//!
//! If identity and offset are impossible and the affine path is impossible
//! too (constant source, or `R² < min_r2`), the candidate **cannot match
//! at all** ([`MatchBound::Infeasible`]) and may be skipped
//! unconditionally. Two guard rails keep the bound conservative under
//! floating point and mismatched configurations: every comparison carries
//! a small relative slack in the safe direction (tolerances inflated,
//! error bounds deflated, `R` inflated), and fingerprints of *different
//! lengths* (the detector would compare a common prefix the full-vector
//! summaries do not describe) fall back to [`MatchBound::Feasible`] with
//! bound 0 — never pruned, always fully checked.
//!
//! `tests/match_index.rs` enforces all of this differentially: index-on
//! and index-off scans must agree bit-for-bit on every outcome, sample and
//! chosen source, across the bundled scenarios and a seeded
//! random-population property loop.

use std::collections::HashMap;

use crate::correlate::CorrelationDetector;
use crate::fingerprint::Fingerprint;

/// Number of contiguous index buckets in the normalized-fingerprint
/// sketch. More buckets tighten the `|r|` bound (at `n` buckets it is
/// exact) but cost proportionally more per candidate; 8 keeps the bound
/// two passes of 8 multiply-adds for the default 32-entry fingerprint.
pub const SUMMARY_BUCKETS: usize = 8;

/// Relative slack applied to every bound comparison, in the conservative
/// direction: the summaries are computed in floating point, and a bound
/// that is sharp in real arithmetic could otherwise prune a candidate the
/// exact scan would have kept.
const SLACK: f64 = 1e-9;

/// Per-bucket moments of the normalized fingerprint: count, `Σu`, `Σu²`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BucketMoments {
    count: usize,
    sum: f64,
    sum_sq: f64,
}

/// Precomputed summary statistics of one fingerprint column, sufficient to
/// lower-bound its match error against any probe summary (see the module
/// docs for the math).
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintSummary {
    len: usize,
    finite: bool,
    mean: f64,
    min: f64,
    max: f64,
    /// Centered sum of squares `Σ(xᵢ−mean)²` — the squared L2 norm of the
    /// centered fingerprint.
    sxx: f64,
    /// Moment buckets of the normalized fingerprint; empty when the
    /// fingerprint is constant (`sxx == 0`), non-finite, or shorter than 2.
    buckets: Vec<BucketMoments>,
}

/// Outcome of bounding one candidate against one probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatchBound {
    /// Detection must fail — the candidate can be skipped unconditionally.
    Infeasible,
    /// Detection may succeed; if it does, its total error is at least this.
    Feasible(f64),
}

impl FingerprintSummary {
    /// Summarize one fingerprint.
    pub fn of(fp: &Fingerprint) -> Self {
        let values = fp.values();
        let len = values.len();
        let finite = fp.is_finite();
        if len == 0 || !finite {
            return FingerprintSummary {
                len,
                finite,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                sxx: 0.0,
                buckets: Vec::new(),
            };
        }
        let mean = values.iter().sum::<f64>() / len as f64;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut sxx = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            let d = v - mean;
            sxx += d * d;
        }
        let buckets = if len >= 2 && sxx > 0.0 {
            let norm = sxx.sqrt();
            let chunk = len.div_ceil(SUMMARY_BUCKETS);
            values
                .chunks(chunk)
                .map(|slice| {
                    let mut sum = 0.0;
                    let mut sum_sq = 0.0;
                    for &v in slice {
                        let u = (v - mean) / norm;
                        sum += u;
                        sum_sq += u * u;
                    }
                    BucketMoments {
                        count: slice.len(),
                        sum,
                        sum_sq,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        FingerprintSummary {
            len,
            finite,
            mean,
            min,
            max,
            sxx,
            buckets,
        }
    }

    /// Fingerprint length this summary describes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the summary of an empty fingerprint.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lower-bound the error of mapping `self` (the stored source column)
    /// onto `probe`, or prove no mapping can be detected. Sound with
    /// respect to [`CorrelationDetector::detect`]: whenever detection
    /// succeeds with error `e`, `bound(...)` is `Feasible(b)` with
    /// `b ≤ e`.
    pub fn bound(&self, probe: &FingerprintSummary, detector: &CorrelationDetector) -> MatchBound {
        let n = self.len.min(probe.len);
        if n < 2 {
            // detect() rejects common prefixes shorter than 2 outright.
            return MatchBound::Infeasible;
        }
        if self.len != probe.len {
            // The detector compares the common *prefix*; full-vector
            // summaries say nothing sound about it. Never prune.
            return MatchBound::Feasible(0.0);
        }
        if !self.finite || !probe.finite {
            // Equal lengths: the compared prefix is the whole vector, and a
            // non-finite entry makes detect() return None.
            return MatchBound::Infeasible;
        }
        let scale = self
            .min
            .abs()
            .max(self.max.abs())
            .max(probe.min.abs())
            .max(probe.max.abs())
            .max(1.0);
        let tol = detector.tolerance + SLACK * scale;
        // Identity: necessary conditions on mean/min/max.
        let d_mean = probe.mean - self.mean;
        if d_mean.abs() <= tol
            && (probe.min - self.min).abs() <= tol
            && (probe.max - self.max).abs() <= tol
        {
            return MatchBound::Feasible(0.0);
        }
        // Constant offset: extrema must track the mean difference.
        if ((probe.min - self.min) - d_mean).abs() <= 2.0 * tol
            && ((probe.max - self.max) - d_mean).abs() <= 2.0 * tol
        {
            return MatchBound::Feasible(0.0);
        }
        // Only the affine path is left.
        if probe.sxx <= 0.0 {
            // Constant probe against a varying source: the least-squares
            // fit is exact (zero slope, r² = 1 by convention, error 0).
            return MatchBound::Feasible(0.0);
        }
        if self.sxx <= 0.0 {
            // Constant source cannot predict a varying probe; fit_affine
            // rejects it, and identity/offset were ruled out above.
            return MatchBound::Infeasible;
        }
        let r_abs = r_upper_bound(&self.buckets, &probe.buckets);
        let r2 = (r_abs * r_abs).min(1.0);
        if r2 < detector.min_r2 - SLACK {
            return MatchBound::Infeasible;
        }
        let dof = (n - 2).max(1) as f64;
        let err = (probe.sxx * (1.0 - r2) / dof).sqrt();
        MatchBound::Feasible(err * (1.0 - SLACK))
    }
}

/// Upper bound on `|r| = |u·v|` from the two bucketed moment sketches (see
/// the module docs); the sketches describe equal-length fingerprints, so
/// their buckets align.
fn r_upper_bound(a: &[BucketMoments], b: &[BucketMoments]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sketches of equal-length fingerprints");
    let mut lo = 0.0;
    let mut hi = 0.0;
    for (ba, bb) in a.iter().zip(b) {
        let m = ba.count as f64;
        let mean_term = ba.sum * bb.sum / m;
        let res_a = (ba.sum_sq - ba.sum * ba.sum / m).max(0.0).sqrt();
        let res_b = (bb.sum_sq - bb.sum * bb.sum / m).max(0.0).sqrt();
        let cross = res_a * res_b;
        lo += mean_term - cross;
        hi += mean_term + cross;
    }
    (lo.abs().max(hi.abs()) * (1.0 + SLACK)).min(1.0)
}

/// Summarize every column of a fingerprint map (the per-record step of
/// index maintenance on publish).
pub fn summarize(
    fingerprints: &HashMap<String, Fingerprint>,
) -> HashMap<String, FingerprintSummary> {
    fingerprints
        .iter()
        .map(|(name, fp)| (name.clone(), FingerprintSummary::of(fp)))
        .collect::<HashMap<_, _>>()
}

/// Bound a whole candidate against a whole probe across `columns` — the
/// index-side counterpart of [`CorrelationDetector::detect_all`]: any
/// column that is missing on either side or individually infeasible sinks
/// the candidate, otherwise per-column bounds add (as the detector's
/// per-column errors do).
pub fn bound_all(
    source: &HashMap<String, FingerprintSummary>,
    probe: &HashMap<String, FingerprintSummary>,
    columns: &[String],
    detector: &CorrelationDetector,
) -> MatchBound {
    let mut total = 0.0;
    for col in columns {
        let (s, p) = match (source.get(col), probe.get(col)) {
            (Some(s), Some(p)) => (s, p),
            // detect_all returns None when either side lacks the column.
            _ => return MatchBound::Infeasible,
        };
        match s.bound(p, detector) {
            MatchBound::Infeasible => return MatchBound::Infeasible,
            MatchBound::Feasible(err) => total += err,
        }
    }
    MatchBound::Feasible(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(values: &[f64]) -> Fingerprint {
        Fingerprint::from_values(values.to_vec())
    }

    fn det() -> CorrelationDetector {
        CorrelationDetector::default()
    }

    /// The bound is sound iff: detect succeeds ⇒ bound is Feasible(b) with
    /// b ≤ error. Checked directly for a spread of relationships.
    #[test]
    fn bound_never_exceeds_detected_error() {
        let base: Vec<f64> = (0..32).map(|i| ((i * 37 % 97) as f64) - 40.0).collect();
        let related: Vec<Vec<f64>> = vec![
            base.clone(),
            base.iter().map(|v| v + 13.0).collect(),
            base.iter().map(|v| 2.5 * v - 4.0).collect(),
            // near-affine with deterministic perturbation
            base.iter()
                .enumerate()
                .map(|(i, v)| 1.5 * v + if i % 2 == 0 { 0.4 } else { -0.4 })
                .collect(),
        ];
        let source = FingerprintSummary::of(&fp(&base));
        for values in &related {
            let target = fp(values);
            let probe = FingerprintSummary::of(&target);
            let detected = det().detect(&fp(&base), &target);
            match source.bound(&probe, &det()) {
                MatchBound::Infeasible => {
                    assert!(detected.is_none(), "infeasible bound but detect matched");
                }
                MatchBound::Feasible(b) => {
                    if let Some(mapping) = detected {
                        assert!(
                            b <= mapping.error_std() + 1e-12,
                            "bound {b} exceeds error {}",
                            mapping.error_std()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unrelated_noise_is_infeasible() {
        // A sign-alternating source vs pseudo-random noise: the bucketed
        // |r| bound must fall below the detector's min_r2.
        let a: Vec<f64> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let b: Vec<f64> = (0..32)
            .map(|i| ((i * i * 31 % 101) as f64) / 10.0)
            .collect();
        let sa = FingerprintSummary::of(&fp(&a));
        let sb = FingerprintSummary::of(&fp(&b));
        assert_eq!(sa.bound(&sb, &det()), MatchBound::Infeasible);
        assert_eq!(det().detect(&fp(&a), &fp(&b)), None, "detect agrees");
    }

    #[test]
    fn identity_and_offset_bound_to_zero() {
        let base: Vec<f64> = (0..16).map(|i| (i * i) as f64).collect();
        let shifted: Vec<f64> = base.iter().map(|v| v + 5.0).collect();
        let s = FingerprintSummary::of(&fp(&base));
        assert_eq!(s.bound(&s, &det()), MatchBound::Feasible(0.0));
        assert_eq!(
            s.bound(&FingerprintSummary::of(&fp(&shifted)), &det()),
            MatchBound::Feasible(0.0)
        );
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let varying = FingerprintSummary::of(&fp(&[1.0, 2.0, 3.0, 4.0]));
        let constant = FingerprintSummary::of(&fp(&[7.0, 7.0, 7.0, 7.0]));
        let nan = FingerprintSummary::of(&fp(&[1.0, f64::NAN, 3.0, 4.0]));
        let short = FingerprintSummary::of(&fp(&[1.0]));
        let longer = FingerprintSummary::of(&fp(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        // Constant source cannot affine-predict a varying probe.
        assert_eq!(constant.bound(&varying, &det()), MatchBound::Infeasible);
        // Constant probe is a valid (exact) fit from a varying source.
        assert_eq!(varying.bound(&constant, &det()), MatchBound::Feasible(0.0));
        // Non-finite entries make detection fail.
        assert_eq!(varying.bound(&nan, &det()), MatchBound::Infeasible);
        assert_eq!(nan.bound(&varying, &det()), MatchBound::Infeasible);
        // Too-short prefixes cannot match.
        assert_eq!(varying.bound(&short, &det()), MatchBound::Infeasible);
        assert!(!short.is_empty() && short.len() == 1);
        // Length mismatch: never pruned (the detector compares a prefix).
        assert_eq!(varying.bound(&longer, &det()), MatchBound::Feasible(0.0));
        assert_eq!(longer.bound(&varying, &det()), MatchBound::Feasible(0.0));
    }

    #[test]
    fn bound_all_requires_every_column() {
        let base: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let noise: Vec<f64> = (0..16).map(|i| (i * 53 % 17) as f64).collect();
        let source = summarize(&HashMap::from([
            ("a".to_owned(), fp(&base)),
            ("b".to_owned(), fp(&base)),
        ]));
        let probe = summarize(&HashMap::from([
            ("a".to_owned(), fp(&base)),
            ("b".to_owned(), fp(&noise)),
        ]));
        let cols_ok = ["a".to_owned()];
        let cols_bad = ["a".to_owned(), "b".to_owned()];
        let cols_missing = ["a".to_owned(), "zz".to_owned()];
        assert_eq!(
            bound_all(&source, &probe, &cols_ok, &det()),
            MatchBound::Feasible(0.0)
        );
        assert_eq!(
            bound_all(&source, &probe, &cols_bad, &det()),
            MatchBound::Infeasible,
            "one unmatchable column sinks the candidate"
        );
        assert_eq!(
            bound_all(&source, &probe, &cols_missing, &det()),
            MatchBound::Infeasible,
            "missing column sinks the candidate"
        );
    }

    #[test]
    fn exhaustive_bucket_bound_is_exact_for_full_resolution() {
        // With one value per bucket the residuals vanish and the bound
        // equals |r| exactly: a perfectly correlated pair must bound to 1.
        let base: Vec<f64> = (0..SUMMARY_BUCKETS).map(|i| i as f64).collect();
        let scaled: Vec<f64> = base.iter().map(|v| 3.0 * v + 1.0).collect();
        let a = FingerprintSummary::of(&fp(&base));
        let b = FingerprintSummary::of(&fp(&scaled));
        match a.bound(&b, &det()) {
            MatchBound::Feasible(err) => assert!(err <= 1e-9, "exact affine bounds to ~0: {err}"),
            other => panic!("expected feasible, got {other:?}"),
        }
    }
}
